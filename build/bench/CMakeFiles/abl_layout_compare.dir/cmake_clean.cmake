file(REMOVE_RECURSE
  "CMakeFiles/abl_layout_compare.dir/abl_layout_compare.cpp.o"
  "CMakeFiles/abl_layout_compare.dir/abl_layout_compare.cpp.o.d"
  "abl_layout_compare"
  "abl_layout_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_layout_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
