# Empty compiler generated dependencies file for abl_layout_compare.
# This may be replaced when dependencies are built.
