file(REMOVE_RECURSE
  "CMakeFiles/fig3_bilateral_mic.dir/fig3_bilateral_mic.cpp.o"
  "CMakeFiles/fig3_bilateral_mic.dir/fig3_bilateral_mic.cpp.o.d"
  "fig3_bilateral_mic"
  "fig3_bilateral_mic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_bilateral_mic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
