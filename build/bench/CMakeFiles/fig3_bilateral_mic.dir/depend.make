# Empty dependencies file for fig3_bilateral_mic.
# This may be replaced when dependencies are built.
