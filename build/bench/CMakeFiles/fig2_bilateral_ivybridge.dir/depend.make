# Empty dependencies file for fig2_bilateral_ivybridge.
# This may be replaced when dependencies are built.
