file(REMOVE_RECURSE
  "CMakeFiles/fig2_bilateral_ivybridge.dir/fig2_bilateral_ivybridge.cpp.o"
  "CMakeFiles/fig2_bilateral_ivybridge.dir/fig2_bilateral_ivybridge.cpp.o.d"
  "fig2_bilateral_ivybridge"
  "fig2_bilateral_ivybridge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_bilateral_ivybridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
