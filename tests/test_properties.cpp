// Property-based suites: invariants swept over parameter grids with
// TEST_P / INSTANTIATE_TEST_SUITE_P, plus analytic cache-model checks.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "sfcvis/exec/execution_context.hpp"
#include "sfcvis/core/grid.hpp"
#include "sfcvis/core/indexer.hpp"
#include "sfcvis/core/layout.hpp"
#include "sfcvis/core/morton.hpp"
#include "sfcvis/data/combustion.hpp"
#include "sfcvis/filters/bilateral.hpp"
#include "sfcvis/memsim/platforms.hpp"
#include "sfcvis/render/raycast.hpp"

namespace core = sfcvis::core;
namespace exec = sfcvis::exec;
namespace data = sfcvis::data;
namespace filters = sfcvis::filters;
namespace memsim = sfcvis::memsim;
namespace render = sfcvis::render;
namespace threads = sfcvis::threads;

using core::Extents3D;

// ---------------------------------------------------------------------------
// Layout invariants over an extents grid
// ---------------------------------------------------------------------------

class LayoutExtentsSweep : public ::testing::TestWithParam<Extents3D> {};

TEST_P(LayoutExtentsSweep, AllLayoutsBijectiveWithinCapacity) {
  const Extents3D e = GetParam();
  auto check = [&](const auto& layout) {
    std::vector<bool> seen(layout.required_capacity(), false);
    for (std::uint32_t k = 0; k < e.nz; ++k) {
      for (std::uint32_t j = 0; j < e.ny; ++j) {
        for (std::uint32_t i = 0; i < e.nx; ++i) {
          const auto idx = layout.index(i, j, k);
          ASSERT_LT(idx, seen.size());
          ASSERT_FALSE(seen[idx]);
          seen[idx] = true;
        }
      }
    }
    EXPECT_GE(layout.required_capacity(), e.size());
  };
  check(core::ArrayOrderLayout(e));
  check(core::ZOrderLayout(e));
  check(core::TiledLayout(e));
  check(core::HilbertLayout(e));
}

TEST_P(LayoutExtentsSweep, IndexerAgreesWithLayouts) {
  const Extents3D e = GetParam();
  const core::Indexer ia(core::Order::kArray, e);
  const core::Indexer iz(core::Order::kZ, e);
  const core::ArrayOrderLayout la(e);
  const core::ZOrderLayout lz(e);
  for (std::uint32_t k = 0; k < e.nz; ++k) {
    for (std::uint32_t j = 0; j < e.ny; ++j) {
      for (std::uint32_t i = 0; i < e.nx; ++i) {
        ASSERT_EQ(ia.getIndex(i, j, k), la.index(i, j, k));
        ASSERT_EQ(iz.getIndex(i, j, k), lz.index(i, j, k));
      }
    }
  }
}

TEST_P(LayoutExtentsSweep, ZOrderPaddingIsTight) {
  // Capacity is exactly the product of the per-axis power-of-two paddings,
  // never more (the anisotropic generator is compact).
  const Extents3D e = GetParam();
  const auto p = core::padded_pow2(e);
  EXPECT_EQ(core::ZOrderLayout(e).required_capacity(), p.size());
}

INSTANTIATE_TEST_SUITE_P(
    ExtentsGrid, LayoutExtentsSweep,
    ::testing::Values(Extents3D{1, 1, 1}, Extents3D{2, 2, 2}, Extents3D{3, 3, 3},
                      Extents3D{4, 4, 4}, Extents3D{5, 3, 2}, Extents3D{7, 7, 7},
                      Extents3D{8, 8, 8}, Extents3D{9, 8, 7}, Extents3D{16, 1, 1},
                      Extents3D{1, 16, 1}, Extents3D{1, 1, 16}, Extents3D{12, 10, 6},
                      Extents3D{17, 5, 3}, Extents3D{32, 16, 8}, Extents3D{33, 17, 9}),
    [](const ::testing::TestParamInfo<Extents3D>& param) {
      return std::to_string(param.param.nx) + "x" + std::to_string(param.param.ny) + "x" +
             std::to_string(param.param.nz);
    });

// ---------------------------------------------------------------------------
// Z-order recursive-blocking property
// ---------------------------------------------------------------------------

TEST(ZOrderRecursion, EveryAlignedOctantIsAContiguousCurveRange) {
  // For every level l and octant m, codes [m*8^l, (m+1)*8^l) decode to an
  // axis-aligned 2^l cube — the property that gives Z-order its locality
  // at every scale.
  std::mt19937 rng(5);
  for (unsigned level = 1; level <= 5; ++level) {
    const std::uint64_t block = 1ull << (3 * level);
    const std::uint32_t side = 1u << level;
    for (int trial = 0; trial < 20; ++trial) {
      const std::uint64_t m = rng() % 512;
      const auto base = core::morton_decode_3d(m * block);
      EXPECT_EQ(base.x % side, 0u);
      EXPECT_EQ(base.y % side, 0u);
      EXPECT_EQ(base.z % side, 0u);
      for (int probe = 0; probe < 16; ++probe) {
        const std::uint64_t code = m * block + rng() % block;
        const auto c = core::morton_decode_3d(code);
        ASSERT_LT(c.x - base.x, side);
        ASSERT_LT(c.y - base.y, side);
        ASSERT_LT(c.z - base.z, side);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Analytic cache-model checks
// ---------------------------------------------------------------------------

TEST(CacheAnalytic, StrideSweepMissesMatchDistinctLines) {
  // A cold sweep of N accesses at stride S bytes misses exactly once per
  // distinct 64-byte line when the footprint exceeds capacity once through.
  memsim::PlatformSpec spec;
  spec.name = "l1only";
  spec.private_levels = {memsim::CacheConfig{"L1", 4096, 64, 4}};
  for (const std::uint32_t stride : {4u, 8u, 16u, 64u, 128u}) {
    memsim::Hierarchy h(spec, 1);
    const int n = 1024;
    for (int a = 0; a < n; ++a) {
      h.access(0, static_cast<std::uint64_t>(a) * stride, 4);
    }
    // stride < 64 covers lines contiguously; stride >= 64 (a multiple of
    // the line size here) lands every access on its own line.
    const std::uint64_t distinct_lines =
        stride >= 64 ? static_cast<std::uint64_t>(n)
                     : (static_cast<std::uint64_t>(n - 1) * stride + 4 + 63) / 64;
    EXPECT_EQ(h.level_stats()[0].stats.misses, distinct_lines) << "stride " << stride;
  }
}

TEST(CacheAnalytic, ConflictSetThrashesExactly) {
  // assoc+1 lines mapped to one set, accessed cyclically with true LRU:
  // every access misses (the classic LRU pathological case).
  memsim::PlatformSpec spec;
  spec.name = "conflict";
  spec.private_levels = {memsim::CacheConfig{"L1", 4096, 64, 4}};  // 16 sets
  memsim::Hierarchy h(spec, 1);
  const std::uint64_t set_stride = 16ull * 64;  // same set every 16 lines
  const int rounds = 10;
  for (int round = 0; round < rounds; ++round) {
    for (std::uint64_t way = 0; way < 5; ++way) {  // assoc+1 = 5 lines
      h.access(0, way * set_stride, 4);
    }
  }
  EXPECT_EQ(h.level_stats()[0].stats.misses, 5u * rounds);
}

TEST(CacheAnalytic, WorkingSetJustFitsNeverMissesAgain) {
  memsim::PlatformSpec spec;
  spec.name = "fits";
  spec.private_levels = {memsim::CacheConfig{"L1", 4096, 64, 4}};
  memsim::Hierarchy h(spec, 1);
  const std::uint64_t lines = 4096 / 64;
  for (int round = 0; round < 5; ++round) {
    for (std::uint64_t line = 0; line < lines; ++line) {
      h.access(0, line * 64, 4);
    }
  }
  EXPECT_EQ(h.level_stats()[0].stats.misses, lines);  // cold misses only
}

// ---------------------------------------------------------------------------
// Kernel invariants under harness parameters
// ---------------------------------------------------------------------------

class RenderTileSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RenderTileSweep, TileSizeNeverChangesPixels) {
  const std::uint32_t tile = GetParam();
  const Extents3D e = Extents3D::cube(16);
  core::Grid3D<float, core::ArrayOrderLayout> g(e);
  data::fill_combustion(g);
  exec::ExecutionContext pool(3);
  const auto tf = render::TransferFunction::flame();
  const auto cam = render::orbit_camera(1, 8, 16, 16, 16);
  const render::RenderConfig reference_config{40, 40, 32, 0.6f, 0.98f};
  const render::RenderConfig config{40, 40, tile, 0.6f, 0.98f};
  const auto reference = render::raycast_parallel(g, cam, tf, reference_config, pool);
  const auto img = render::raycast_parallel(g, cam, tf, config, pool);
  for (std::size_t p = 0; p < img.pixels().size(); ++p) {
    ASSERT_EQ(img.pixels()[p], reference.pixels()[p]) << "tile " << tile;
  }
}

INSTANTIATE_TEST_SUITE_P(Tiles, RenderTileSweep, ::testing::Values(1u, 7u, 8u, 16u, 64u),
                         [](const ::testing::TestParamInfo<std::uint32_t>& param) {
                           return "t" + std::to_string(param.param);
                         });

class BilateralThreadSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(BilateralThreadSweep, ThreadCountNeverChangesOutput) {
  const unsigned nthreads = GetParam();
  const Extents3D e{10, 8, 6};
  core::Grid3D<float, core::ArrayOrderLayout> src(e), reference(e), got(e);
  src.fill_from([](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    return std::sin(static_cast<float>(i * 3 + j * 5 + k * 7));
  });
  const filters::BilateralParams params{2, 1.5f, 0.2f};
  filters::bilateral_reference(src, reference, params.radius, params.sigma_spatial,
                               params.sigma_range);
  exec::ExecutionContext pool(nthreads);
  filters::bilateral_parallel(src, got, params, pool);
  reference.for_each_index([&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    ASSERT_NEAR(got.at(i, j, k), reference.at(i, j, k), 1e-5f);
  });
}

INSTANTIATE_TEST_SUITE_P(Threads, BilateralThreadSweep,
                         ::testing::Values(1u, 2u, 3u, 7u, 16u),
                         [](const ::testing::TestParamInfo<unsigned>& param) {
                           return "t" + std::to_string(param.param);
                         });

// ---------------------------------------------------------------------------
// Traced-run invariants across platform models
// ---------------------------------------------------------------------------

class PlatformSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(PlatformSweep, TracedCountersAreDeterministicAndOrdered) {
  const auto spec = memsim::scaled(memsim::platform_by_name(GetParam()), 64);
  const Extents3D e = Extents3D::cube(16);
  core::Grid3D<float, core::ArrayOrderLayout> src(e);
  data::fill_combustion(src);
  core::Grid3D<float, core::ArrayOrderLayout> dst(e);
  const filters::BilateralParams params{1, 1.5f, 0.1f, filters::PencilAxis::kZ,
                                        filters::LoopOrder::kZYX};
  auto run = [&] {
    memsim::Hierarchy h(spec, 3);
    filters::bilateral_traced(src, dst, params, h);
    return h;
  };
  const auto h1 = run();
  const auto h2 = run();
  EXPECT_EQ(h1.memory_fills(), h2.memory_fills());
  EXPECT_EQ(h1.modeled_cycles_max(), h2.modeled_cycles_max());
  // Sanity ordering: level accesses decrease down the hierarchy.
  const auto levels = h1.level_stats();
  for (std::size_t l = 1; l < levels.size(); ++l) {
    EXPECT_LE(levels[l].stats.accesses, levels[l - 1].stats.accesses);
  }
  EXPECT_LE(h1.memory_fills(), levels.back().stats.accesses);
}

INSTANTIATE_TEST_SUITE_P(Platforms, PlatformSweep,
                         ::testing::Values("ivybridge", "mic", "tiny"));
