// core::AnyVolume / LayoutKind facade: the one place the four concrete
// Grid3D instantiations are spelled. Everything here pins the dispatch
// behaviour the rest of the codebase now relies on.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <variant>

#include "sfcvis/core/grid.hpp"
#include "sfcvis/core/layout.hpp"
#include "sfcvis/core/volume.hpp"

namespace {

using namespace sfcvis;
using core::AnyVolume;
using core::Extents3D;
using core::LayoutKind;

float field(std::uint32_t i, std::uint32_t j, std::uint32_t k) {
  return static_cast<float>(i) + 0.25f * static_cast<float>(j) -
         0.5f * static_cast<float>(k);
}

TEST(LayoutKind, ToStringMatchesLayoutNames) {
  EXPECT_STREQ(core::to_string(LayoutKind::kArray), "array-order");
  EXPECT_STREQ(core::to_string(LayoutKind::kZOrder), "z-order");
  EXPECT_STREQ(core::to_string(LayoutKind::kTiled), "tiled");
  EXPECT_STREQ(core::to_string(LayoutKind::kHilbert), "hilbert");
  EXPECT_STREQ(core::to_string(LayoutKind::kGMorton), "gmorton");
}

TEST(LayoutKind, ParseRoundTripsAllKinds) {
  for (const auto kind : core::kAllLayoutKinds) {
    EXPECT_EQ(core::parse_layout_kind(core::to_string(kind)), kind);
  }
}

TEST(LayoutKind, ParseAcceptsAliases) {
  EXPECT_EQ(core::parse_layout_kind("array"), LayoutKind::kArray);
  EXPECT_EQ(core::parse_layout_kind("a-order"), LayoutKind::kArray);
  EXPECT_EQ(core::parse_layout_kind("zorder"), LayoutKind::kZOrder);
  EXPECT_EQ(core::parse_layout_kind("morton"), LayoutKind::kZOrder);
  EXPECT_EQ(core::parse_layout_kind("generalized-morton"), LayoutKind::kGMorton);
}

TEST(LayoutKind, ParseRejectsUnknown) {
  EXPECT_THROW((void)core::parse_layout_kind("row-major"), std::invalid_argument);
  EXPECT_THROW((void)core::parse_layout_kind(""), std::invalid_argument);
}

TEST(LayoutKind, ParseFailureListsValidNamesAndInterleaveSyntax) {
  // The error message is the CLI's only documentation at the point of
  // failure: it must enumerate every accepted name and show the
  // "gmorton:<pattern>" syntax.
  try {
    (void)core::parse_layout_kind("row-major");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& ex) {
    const std::string msg = ex.what();
    EXPECT_NE(msg.find("row-major"), std::string::npos) << msg;
    for (const auto kind : core::kAllLayoutKinds) {
      EXPECT_NE(msg.find(core::to_string(kind)), std::string::npos) << msg;
    }
    EXPECT_NE(msg.find("gmorton:<pattern>"), std::string::npos) << msg;
  }
}

TEST(LayoutSpec, ParsesPlainKindsAndGMortonPattern) {
  EXPECT_EQ(core::parse_layout_spec("tiled").kind, LayoutKind::kTiled);
  EXPECT_TRUE(core::parse_layout_spec("tiled").interleave.empty());

  const core::LayoutSpec spec = core::parse_layout_spec("gmorton:zyxzyx");
  EXPECT_EQ(spec.kind, LayoutKind::kGMorton);
  EXPECT_EQ(spec.interleave, "zyxzyx");

  // Plain "gmorton" means the canonical pattern is chosen at make_volume
  // time (it depends on the extents).
  EXPECT_EQ(core::parse_layout_spec("gmorton").kind, LayoutKind::kGMorton);
  EXPECT_TRUE(core::parse_layout_spec("gmorton").interleave.empty());
}

TEST(LayoutSpec, RejectsArgumentsOnOtherKindsAndEmptyPattern) {
  EXPECT_THROW((void)core::parse_layout_spec("tiled:8"), std::invalid_argument);
  EXPECT_THROW((void)core::parse_layout_spec("gmorton:"), std::invalid_argument);
  EXPECT_THROW((void)core::parse_layout_spec("bogus:zyx"), std::invalid_argument);
}

TEST(MakeVolume, KindAndNameMatchRequest) {
  const Extents3D e{12, 7, 5};
  for (const auto kind : core::kAllLayoutKinds) {
    const AnyVolume v = core::make_volume(kind, e);
    EXPECT_EQ(v.kind(), kind);
    EXPECT_STREQ(v.layout_name(), core::to_string(kind));
    EXPECT_EQ(v.extents().nx, e.nx);
    EXPECT_EQ(v.size(), e.size());
  }
}

TEST(MakeVolume, CapacitiesMatchDirectLayouts) {
  const Extents3D e{20, 7, 5};
  EXPECT_EQ(core::make_volume(LayoutKind::kArray, e).capacity(),
            core::ArrayOrderLayout(e).required_capacity());
  EXPECT_EQ(core::make_volume(LayoutKind::kZOrder, e).capacity(),
            core::ZOrderLayout(e).required_capacity());
  EXPECT_EQ(core::make_volume(LayoutKind::kHilbert, e).capacity(),
            core::HilbertLayout(e).required_capacity());
  core::VolumeOpts opts;
  opts.tile = 4;
  EXPECT_EQ(core::make_volume(LayoutKind::kTiled, e, opts).capacity(),
            core::TiledLayout(e, 4).required_capacity());
}

TEST(AnyVolume, VariantIndexMatchesKindEnum) {
  // kind() is static_cast of the variant index; this ordering is the one
  // invariant a facade refactor could silently break.
  const Extents3D e = Extents3D::cube(4);
  EXPECT_EQ(core::make_volume(LayoutKind::kArray, e).kind(), LayoutKind::kArray);
  EXPECT_EQ(core::make_volume(LayoutKind::kZOrder, e).kind(), LayoutKind::kZOrder);
  EXPECT_EQ(core::make_volume(LayoutKind::kTiled, e).kind(), LayoutKind::kTiled);
  EXPECT_EQ(core::make_volume(LayoutKind::kHilbert, e).kind(), LayoutKind::kHilbert);
}

TEST(AnyVolume, FillAndAtAgreeAcrossLayouts) {
  const Extents3D e{9, 6, 5};
  for (const auto kind : core::kAllLayoutKinds) {
    AnyVolume v = core::make_volume(kind, e);
    v.fill_from(field);
    for (std::uint32_t k = 0; k < e.nz; ++k) {
      for (std::uint32_t j = 0; j < e.ny; ++j) {
        for (std::uint32_t i = 0; i < e.nx; ++i) {
          ASSERT_EQ(v.at(i, j, k), field(i, j, k))
              << core::to_string(kind) << " at " << i << "," << j << "," << k;
        }
      }
    }
  }
}

TEST(AnyVolume, AsReturnsConcreteGridOrThrows) {
  AnyVolume v = core::make_volume(LayoutKind::kZOrder, Extents3D::cube(8));
  EXPECT_NO_THROW((void)v.as<core::ZOrderLayout>());
  EXPECT_THROW((void)v.as<core::ArrayOrderLayout>(), std::bad_variant_access);
  auto& grid = v.as<core::ZOrderLayout>();
  grid.at(1, 2, 3) = 7.0f;
  EXPECT_EQ(v.at(1, 2, 3), 7.0f);
}

TEST(AnyVolume, VisitReturnsValues) {
  AnyVolume v = core::make_volume(LayoutKind::kTiled, Extents3D::cube(8));
  const std::size_t cap = v.visit([](const auto& g) { return g.capacity(); });
  EXPECT_EQ(cap, v.capacity());
}

TEST(AnyVolume, ConvertToPreservesContentsAcrossAllKinds) {
  const Extents3D e{10, 6, 7};
  AnyVolume src = core::make_volume(LayoutKind::kArray, e);
  src.fill_from(field);
  for (const auto kind : core::kAllLayoutKinds) {
    const AnyVolume dst = src.convert_to(kind);
    EXPECT_EQ(dst.kind(), kind);
    for (std::uint32_t k = 0; k < e.nz; ++k) {
      for (std::uint32_t j = 0; j < e.ny; ++j) {
        for (std::uint32_t i = 0; i < e.nx; ++i) {
          ASSERT_EQ(dst.at(i, j, k), field(i, j, k)) << core::to_string(kind);
        }
      }
    }
  }
}

TEST(AnyVolume, CopyFromAnyLayoutPair) {
  const Extents3D e{8, 5, 6};
  AnyVolume src = core::make_volume(LayoutKind::kHilbert, e);
  src.fill_from(field);
  AnyVolume dst = core::make_volume(LayoutKind::kZOrder, e);
  dst.copy_from(src);
  for (std::uint32_t k = 0; k < e.nz; ++k) {
    for (std::uint32_t j = 0; j < e.ny; ++j) {
      for (std::uint32_t i = 0; i < e.nx; ++i) {
        ASSERT_EQ(dst.at(i, j, k), field(i, j, k));
      }
    }
  }
}

TEST(AnyVolume, DefaultAllocReportIsInert) {
  const AnyVolume v = core::make_volume(LayoutKind::kArray, Extents3D::cube(8));
  const core::AllocReport& report = v.alloc_report();
  EXPECT_FALSE(report.huge_pages_requested);
  EXPECT_FALSE(report.first_touch_requested);
  EXPECT_FALSE(report.huge_page_fallback());
  EXPECT_TRUE(report.message.empty());
}

}  // namespace
