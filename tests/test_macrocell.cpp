// Tests for the macrocell min-max grid and the empty-space-skipping
// raycaster path built on it.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "sfcvis/exec/execution_context.hpp"
#include "sfcvis/core/grid.hpp"
#include "sfcvis/core/morton.hpp"
#include "sfcvis/core/zquery.hpp"
#include "sfcvis/data/combustion.hpp"
#include "sfcvis/memsim/platforms.hpp"
#include "sfcvis/render/camera.hpp"
#include "sfcvis/render/macrocell.hpp"
#include "sfcvis/render/raycast.hpp"
#include "sfcvis/render/transfer.hpp"
#include "sfcvis/threads/pool.hpp"

namespace core = sfcvis::core;
namespace exec = sfcvis::exec;
namespace data = sfcvis::data;
namespace memsim = sfcvis::memsim;
namespace render = sfcvis::render;
namespace threads = sfcvis::threads;
namespace trace = sfcvis::trace;

using core::ArrayOrderLayout;
using core::Extents3D;
using core::Grid3D;
using core::ZOrderLayout;
using render::CellCoord;
using render::Image;
using render::MacrocellGrid;
using render::RenderConfig;
using render::RenderMode;
using render::TransferFunction;
using render::ValueRange;

namespace {

/// Deterministic pseudo-random fill (splitmix-style hash of the index).
template <core::Layout3D L>
void fill_noise(Grid3D<float, L>& g, std::uint64_t seed) {
  const auto& e = g.extents();
  g.fill_from([&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    std::uint64_t x = seed + i + 1000003ull * j + 1000033ull * k;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<float>(x % 100000ull) / 100000.0f;
  });
  (void)e;
}

/// Brute-force oracle: min/max over the one-voxel-widened footprint of
/// cell (cx, cy, cz), mirroring the documented MacrocellGrid contract.
template <core::Layout3D L>
ValueRange brute_range(const Grid3D<float, L>& g, std::uint32_t block, std::uint32_t cx,
                       std::uint32_t cy, std::uint32_t cz) {
  const auto& e = g.extents();
  const std::int64_t b = block;
  const auto lo = [&](std::uint32_t c) { return std::max<std::int64_t>(0, c * b - 1); };
  const auto hi = [&](std::uint32_t c, std::uint32_t n) {
    return std::min<std::int64_t>(n - 1, (c + std::int64_t{1}) * b + 1);
  };
  float mn = std::numeric_limits<float>::max();
  float mx = std::numeric_limits<float>::lowest();
  for (std::int64_t k = lo(cz); k <= hi(cz, e.nz); ++k) {
    for (std::int64_t j = lo(cy); j <= hi(cy, e.ny); ++j) {
      for (std::int64_t i = lo(cx); i <= hi(cx, e.nx); ++i) {
        const float v = g.at(static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j),
                             static_cast<std::uint32_t>(k));
        mn = std::min(mn, v);
        mx = std::max(mx, v);
      }
    }
  }
  return ValueRange{mn, mx};
}

template <core::Layout3D L>
void expect_grid_matches_brute(const Grid3D<float, L>& g, std::uint32_t block) {
  const MacrocellGrid grid = MacrocellGrid::build(g, block);
  const auto& c = grid.cell_extents();
  for (std::uint32_t cz = 0; cz < c.nz; ++cz) {
    for (std::uint32_t cy = 0; cy < c.ny; ++cy) {
      for (std::uint32_t cx = 0; cx < c.nx; ++cx) {
        const ValueRange got = grid.range(cx, cy, cz);
        const ValueRange want = brute_range(g, block, cx, cy, cz);
        ASSERT_EQ(got.min, want.min) << "cell " << cx << "," << cy << "," << cz;
        ASSERT_EQ(got.max, want.max) << "cell " << cx << "," << cy << "," << cz;
      }
    }
  }
}

/// Exact per-channel comparison of two images; returns the mismatch count.
std::size_t count_mismatches(const Image& a, const Image& b) {
  EXPECT_EQ(a.width(), b.width());
  EXPECT_EQ(a.height(), b.height());
  std::size_t bad = 0;
  for (std::uint32_t y = 0; y < a.height(); ++y) {
    for (std::uint32_t x = 0; x < a.width(); ++x) {
      const auto& pa = a.at(x, y);
      const auto& pb = b.at(x, y);
      if (pa.r != pb.r || pa.g != pb.g || pa.b != pb.b || pa.a != pb.a) {
        ++bad;
      }
    }
  }
  return bad;
}

}  // namespace

// ---------------------------------------------------------------------------
// Grid geometry
// ---------------------------------------------------------------------------

TEST(Macrocell, ExtentsCeilDivide) {
  const auto c = render::macrocell_extents(Extents3D{33, 32, 1}, 8);
  EXPECT_EQ(c.nx, 5u);
  EXPECT_EQ(c.ny, 4u);
  EXPECT_EQ(c.nz, 1u);
  EXPECT_THROW((void)render::macrocell_extents(Extents3D{8, 8, 8}, 0),
               std::invalid_argument);
}

TEST(Macrocell, CellOfClampsApron) {
  Grid3D<float, ArrayOrderLayout> g(Extents3D{16, 16, 16});
  fill_noise(g, 1);
  const MacrocellGrid grid = MacrocellGrid::build(g, 8);
  // The render bounding box extends half a voxel past the lattice: those
  // apron positions must land in border cells, never out of range.
  const CellCoord lo = grid.cell_of({-0.5f, -0.5f, -0.5f});
  EXPECT_EQ(lo.i, 0u);
  EXPECT_EQ(lo.j, 0u);
  EXPECT_EQ(lo.k, 0u);
  const CellCoord hi = grid.cell_of({15.5f, 15.5f, 15.5f});
  EXPECT_EQ(hi.i, 1u);
  EXPECT_EQ(hi.j, 1u);
  EXPECT_EQ(hi.k, 1u);
}

TEST(Macrocell, CellExitIsNearestForwardFace) {
  Grid3D<float, ArrayOrderLayout> g(Extents3D{16, 16, 16});
  fill_noise(g, 2);
  const MacrocellGrid grid = MacrocellGrid::build(g, 8);
  // +x ray from cell (0,0,0): exits through the x = 8 face.
  const render::Vec3 origin{1.0f, 2.0f, 3.0f};
  const render::Vec3 inv{1.0f, std::numeric_limits<float>::infinity(),
                         std::numeric_limits<float>::infinity()};
  EXPECT_FLOAT_EQ(grid.cell_exit(origin, inv, CellCoord{0, 0, 0}), 7.0f);
  // -x ray from cell (1,0,0): exits through the x = 8 face the other way.
  const render::Vec3 inv_neg{-1.0f, std::numeric_limits<float>::infinity(),
                             std::numeric_limits<float>::infinity()};
  EXPECT_FLOAT_EQ(grid.cell_exit({12.0f, 2.0f, 3.0f}, inv_neg, CellCoord{1, 0, 0}), 4.0f);
}

// ---------------------------------------------------------------------------
// Min-max correctness vs brute force
// ---------------------------------------------------------------------------

TEST(Macrocell, MinMaxMatchesBruteForceArrayOrder) {
  Grid3D<float, ArrayOrderLayout> g(Extents3D{20, 17, 13});  // ragged edges
  fill_noise(g, 3);
  expect_grid_matches_brute(g, 5);  // non-pow2 block
  expect_grid_matches_brute(g, 8);
}

TEST(Macrocell, MinMaxMatchesBruteForceZOrderFastPath) {
  Grid3D<float, ZOrderLayout> g(Extents3D{32, 32, 32});
  fill_noise(g, 4);
  expect_grid_matches_brute(g, 8);  // pow2 block: contiguous-run fast path
  expect_grid_matches_brute(g, 4);
}

TEST(Macrocell, MinMaxMatchesBruteForceZOrderGenericPath) {
  Grid3D<float, ZOrderLayout> g(Extents3D{24, 20, 28});  // padded zorder extents
  fill_noise(g, 5);
  expect_grid_matches_brute(g, 8);  // edge blocks exercise the fallback
  expect_grid_matches_brute(g, 3);  // non-pow2 block: generic path everywhere
}

TEST(Macrocell, ParallelBuildMatchesSerial) {
  Grid3D<float, ZOrderLayout> g(Extents3D{32, 32, 32});
  fill_noise(g, 6);
  exec::ExecutionContext pool(4);
  const MacrocellGrid serial = MacrocellGrid::build(g, 8);
  const MacrocellGrid parallel = MacrocellGrid::build(g, 8, &pool);
  const auto& c = serial.cell_extents();
  for (std::uint32_t cz = 0; cz < c.nz; ++cz) {
    for (std::uint32_t cy = 0; cy < c.ny; ++cy) {
      for (std::uint32_t cx = 0; cx < c.nx; ++cx) {
        EXPECT_EQ(serial.range(cx, cy, cz).min, parallel.range(cx, cy, cz).min);
        EXPECT_EQ(serial.range(cx, cy, cz).max, parallel.range(cx, cy, cz).max);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Morton block ranges / contiguity predicate
// ---------------------------------------------------------------------------

TEST(Macrocell, MortonBlockRangeCoversBlock) {
  // For an aligned 2^b cube under plain Morton interleave, the range is
  // [encode(corner), encode(corner) + 8^b).
  const auto r = core::morton_block_range_3d(2, 1, 3, 2);  // block (8,4,12), b=2
  EXPECT_EQ(r.base, core::morton_encode_3d(8, 4, 12));
  EXPECT_EQ(r.length, 64u);
  std::vector<std::uint64_t> codes;
  for (std::uint32_t z = 12; z < 16; ++z) {
    for (std::uint32_t y = 4; y < 8; ++y) {
      for (std::uint32_t x = 8; x < 12; ++x) {
        codes.push_back(core::morton_encode_3d(x, y, z));
      }
    }
  }
  std::sort(codes.begin(), codes.end());
  for (std::size_t n = 0; n < codes.size(); ++n) {
    EXPECT_EQ(codes[n], r.base + n);
  }
}

TEST(Macrocell, ZorderBlocksContiguousMatchesStorage) {
  // The predicate must agree with the ground truth: enumerate the storage
  // indices of an aligned block and check they form a contiguous run.
  const auto check = [](const Extents3D& e, unsigned block_log2) {
    Grid3D<float, ZOrderLayout> g(e);
    const bool claim =
        core::zorder_blocks_contiguous(g.layout().tables(), block_log2);
    const std::uint32_t b = 1u << block_log2;
    bool all_contiguous = true;
    for (std::uint32_t z0 = 0; z0 + b <= e.nz && all_contiguous; z0 += b) {
      for (std::uint32_t y0 = 0; y0 + b <= e.ny && all_contiguous; y0 += b) {
        for (std::uint32_t x0 = 0; x0 + b <= e.nx && all_contiguous; x0 += b) {
          std::vector<std::size_t> idx;
          for (std::uint32_t z = z0; z < z0 + b; ++z) {
            for (std::uint32_t y = y0; y < y0 + b; ++y) {
              for (std::uint32_t x = x0; x < x0 + b; ++x) {
                idx.push_back(g.layout().index(x, y, z));
              }
            }
          }
          std::sort(idx.begin(), idx.end());
          for (std::size_t n = 0; n + 1 < idx.size(); ++n) {
            if (idx[n + 1] != idx[n] + 1) {
              all_contiguous = false;
            }
          }
        }
      }
    }
    EXPECT_EQ(claim, all_contiguous) << "extents " << e.nx << "x" << e.ny << "x" << e.nz
                                     << " block_log2 " << block_log2;
    return claim;
  };
  // Cubic pow2 extents: standard interleave is contiguous at any b.
  EXPECT_TRUE(check(Extents3D{16, 16, 16}, 2));
  EXPECT_TRUE(check(Extents3D{32, 32, 32}, 3));
  // Whatever anisotropic padding produces, predicate and ground truth must
  // agree (the value itself is layout-defined).
  check(Extents3D{32, 8, 8}, 2);
  check(Extents3D{8, 32, 16}, 3);
}

// ---------------------------------------------------------------------------
// Transfer-function opacity envelope
// ---------------------------------------------------------------------------

TEST(Macrocell, MaxOpacityBoundsDenseSampling) {
  const TransferFunction tf = TransferFunction::flame();
  // Dense alpha sampling as ground truth over a set of intervals.
  const auto dense_max = [&](float lo, float hi) {
    float m = 0.0f;
    const int n = 4000;
    for (int s = 0; s <= n; ++s) {
      const float v = lo + (hi - lo) * static_cast<float>(s) / static_cast<float>(n);
      m = std::max(m, tf.sample(v).a);
    }
    return m;
  };
  const float bin = 1.0f / 256.0f;  // flame spans [0, 1] over 256 bins
  std::uint64_t rng = 12345;
  for (int trial = 0; trial < 200; ++trial) {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    const float a = static_cast<float>((rng >> 33) % 10000) / 10000.0f;
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    const float b = static_cast<float>((rng >> 33) % 10000) / 10000.0f;
    const float lo = std::min(a, b), hi = std::max(a, b);
    const float bound = tf.max_opacity(lo, hi);
    // Conservative: never below the true max...
    EXPECT_GE(bound, dense_max(lo, hi) - 1e-7f) << lo << " " << hi;
    // ...and tight: never above the true max of the two-bin-widened window.
    EXPECT_LE(bound, dense_max(std::max(0.0f, lo - 2 * bin),
                               std::min(1.0f, hi + 2 * bin)) +
                         1e-6f)
        << lo << " " << hi;
  }
}

TEST(Macrocell, MaxOpacityExactZeroInColdRegion) {
  const TransferFunction tf = TransferFunction::flame();
  // flame() holds alpha identically 0 below the fuel-haze point: the
  // envelope must report exact zero there (this is what classifies empty
  // combustion space as skippable).
  EXPECT_EQ(tf.max_opacity(0.0f, 0.10f), 0.0f);
  EXPECT_GT(tf.max_opacity(0.5f, 0.9f), 0.0f);
  // Degenerate interval and reversed arguments are handled.
  EXPECT_EQ(tf.max_opacity(0.05f, 0.05f), 0.0f);
  EXPECT_EQ(tf.max_opacity(0.10f, 0.0f), 0.0f);
}

// ---------------------------------------------------------------------------
// Render equality: accelerated vs dense
// ---------------------------------------------------------------------------

namespace {

template <core::Layout3D L>
void expect_accelerated_render_identical(RenderMode mode, bool shade) {
  Grid3D<float, L> volume(Extents3D{64, 64, 64});
  data::fill_combustion(volume);
  const TransferFunction tf = TransferFunction::flame();
  exec::ExecutionContext pool(4);

  RenderConfig config;
  config.image_width = 96;
  config.image_height = 96;
  config.mode = mode;
  config.shade = shade;

  // Off-axis viewpoint: rays cross macrocell faces on every axis.
  const auto camera = render::orbit_camera(1, 8, 64, 64, 64);
  const Image dense = render::raycast_parallel(volume, camera, tf, config, pool);

  config.use_macrocells = true;
  config.macrocell_size = 8;
  trace::Tracer::instance().reset_metrics();
  const Image accel = render::raycast_parallel(volume, camera, tf, config, pool, nullptr,
                                               /*collect_stats=*/true);
  const trace::MetricsSnapshot metrics = trace::Tracer::instance().metrics_snapshot();

  EXPECT_EQ(count_mismatches(dense, accel), 0u);
  EXPECT_GT(metrics.total("raycast.cells_visited"), 0u);
  // flame TF leaves most space empty
  EXPECT_GT(metrics.total("raycast.samples_skipped"), 0u);
  EXPECT_GT(render::skip_rate(metrics), 0.0);
}

}  // namespace

TEST(MacrocellRender, CompositeIdenticalArrayOrder) {
  expect_accelerated_render_identical<ArrayOrderLayout>(RenderMode::kComposite, false);
}

TEST(MacrocellRender, CompositeIdenticalZOrder) {
  expect_accelerated_render_identical<ZOrderLayout>(RenderMode::kComposite, false);
}

TEST(MacrocellRender, MipIdenticalArrayOrder) {
  expect_accelerated_render_identical<ArrayOrderLayout>(RenderMode::kMip, false);
}

TEST(MacrocellRender, MipIdenticalZOrder) {
  expect_accelerated_render_identical<ZOrderLayout>(RenderMode::kMip, false);
}

TEST(MacrocellRender, ShadedIdenticalArrayOrder) {
  expect_accelerated_render_identical<ArrayOrderLayout>(RenderMode::kComposite, true);
}

TEST(MacrocellRender, ShadedIdenticalZOrder) {
  expect_accelerated_render_identical<ZOrderLayout>(RenderMode::kComposite, true);
}

TEST(MacrocellRender, BlockSizesAgree) {
  Grid3D<float, ArrayOrderLayout> volume(Extents3D{48, 48, 48});
  data::fill_combustion(volume);
  const TransferFunction tf = TransferFunction::flame();
  exec::ExecutionContext pool(4);
  RenderConfig config;
  config.image_width = 64;
  config.image_height = 64;
  const auto camera = render::orbit_camera(3, 8, 48, 48, 48);
  const Image dense = render::raycast_parallel(volume, camera, tf, config, pool);
  config.use_macrocells = true;
  for (const std::uint32_t block : {4u, 7u, 16u}) {
    config.macrocell_size = block;
    const Image accel = render::raycast_parallel(volume, camera, tf, config, pool);
    EXPECT_EQ(count_mismatches(dense, accel), 0u) << "block " << block;
  }
}

// ---------------------------------------------------------------------------
// MIP first-sample guarantee (short spans)
// ---------------------------------------------------------------------------

TEST(MacrocellRender, MipTakesSampleOnSpanShorterThanStep) {
  // A span much shorter than one step still classifies a real field value:
  // the n = 0 sample at t_enter is structural, so the peak can never be
  // the -FLT_MAX sentinel.
  Grid3D<float, ArrayOrderLayout> volume(Extents3D{4, 4, 4});
  volume.fill_from([](std::uint32_t, std::uint32_t, std::uint32_t) { return 0.7f; });
  const TransferFunction tf = TransferFunction::grayscale(0.0f, 1.0f);
  exec::ExecutionContext pool(2);

  RenderConfig config;
  config.image_width = 8;
  config.image_height = 8;
  config.mode = RenderMode::kMip;
  config.step = 50.0f;  // one step overshoots the whole volume
  const auto camera = render::orbit_camera(0, 8, 4, 4, 4);

  for (const bool use_cells : {false, true}) {
    config.use_macrocells = use_cells;
    const Image img = render::raycast_parallel(volume, camera, tf, config, pool);
    const auto& center = img.at(4, 4);
    EXPECT_GT(center.a, 0.0f) << "use_macrocells=" << use_cells;
    EXPECT_FLOAT_EQ(center.a, tf.sample(0.7f).a) << "use_macrocells=" << use_cells;
  }
}

// ---------------------------------------------------------------------------
// Traced (simulated-counter) integration
// ---------------------------------------------------------------------------

TEST(MacrocellRender, TracedSkippingReducesAccessesImageIdentical) {
  Grid3D<float, ZOrderLayout> volume(Extents3D{32, 32, 32});
  data::fill_combustion(volume);
  const TransferFunction tf = TransferFunction::flame();

  RenderConfig config;
  config.image_width = 48;
  config.image_height = 48;
  const auto camera = render::orbit_camera(2, 8, 32, 32, 32);

  memsim::Hierarchy dense_h(memsim::tiny_test_platform(), 2);
  const Image dense = render::raycast_traced(volume, camera, tf, config, dense_h);

  config.use_macrocells = true;
  config.macrocell_size = 8;
  memsim::Hierarchy accel_h(memsim::tiny_test_platform(), 2);
  trace::Tracer::instance().reset_metrics();
  const Image accel = render::raycast_traced(volume, camera, tf, config, accel_h, SIZE_MAX,
                                             nullptr, /*collect_stats=*/true);
  const trace::MetricsSnapshot metrics = trace::Tracer::instance().metrics_snapshot();

  EXPECT_EQ(count_mismatches(dense, accel), 0u);
  EXPECT_GT(metrics.total("raycast.samples_skipped"), 0u);
  // Skipped samples issue no volume reads, so the modeled hierarchy sees a
  // strictly smaller access stream.
  EXPECT_LT(accel_h.total_accesses(), dense_h.total_accesses());
}
