// Tests for the 3D Hilbert codec (src/sfcvis/core/hilbert.*).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <random>
#include <vector>

#include "sfcvis/core/hilbert.hpp"

namespace core = sfcvis::core;

TEST(Hilbert, SingleBitIsGrayCodeOrder) {
  // At 1 bit per axis the curve visits the 8 cube corners so consecutive
  // cells differ in exactly one coordinate.
  core::Coord3D prev = core::hilbert_decode_3d(0, 1);
  for (std::uint64_t h = 1; h < 8; ++h) {
    const auto c = core::hilbert_decode_3d(h, 1);
    const int d = std::abs(int(c.i) - int(prev.i)) + std::abs(int(c.j) - int(prev.j)) +
                  std::abs(int(c.k) - int(prev.k));
    EXPECT_EQ(d, 1) << "step " << h;
    prev = c;
  }
}

TEST(Hilbert, RoundTripExhaustiveSmall) {
  for (unsigned bits = 1; bits <= 4; ++bits) {
    const std::uint32_t n = 1u << bits;
    for (std::uint32_t z = 0; z < n; ++z) {
      for (std::uint32_t y = 0; y < n; ++y) {
        for (std::uint32_t x = 0; x < n; ++x) {
          const auto h = core::hilbert_encode_3d(x, y, z, bits);
          EXPECT_EQ(core::hilbert_decode_3d(h, bits), (core::Coord3D{x, y, z}));
        }
      }
    }
  }
}

TEST(Hilbert, RoundTripRandomLargeBits) {
  std::mt19937 rng(60);
  for (unsigned bits : {8u, 12u, 16u, 21u}) {
    std::uniform_int_distribution<std::uint32_t> dist(0, (1u << bits) - 1);
    for (int s = 0; s < 5000; ++s) {
      const std::uint32_t x = dist(rng), y = dist(rng), z = dist(rng);
      const auto h = core::hilbert_encode_3d(x, y, z, bits);
      EXPECT_EQ(core::hilbert_decode_3d(h, bits), (core::Coord3D{x, y, z}));
    }
  }
}

TEST(Hilbert, IsBijectionOnCube) {
  const unsigned bits = 4;  // 16^3 = 4096 cells
  const std::uint32_t n = 1u << bits;
  std::vector<bool> seen(std::size_t{n} * n * n, false);
  for (std::uint32_t z = 0; z < n; ++z) {
    for (std::uint32_t y = 0; y < n; ++y) {
      for (std::uint32_t x = 0; x < n; ++x) {
        const auto h = core::hilbert_encode_3d(x, y, z, bits);
        ASSERT_LT(h, seen.size());
        EXPECT_FALSE(seen[h]);
        seen[h] = true;
      }
    }
  }
}

TEST(Hilbert, ConsecutiveIndicesAreFaceNeighbours) {
  // The defining Hilbert property (and its advantage over Z-order, which
  // has jumps): the curve is a Hamiltonian path on the grid graph.
  const unsigned bits = 5;  // 32^3
  core::Coord3D prev = core::hilbert_decode_3d(0, bits);
  const std::uint64_t total = 1ull << (3 * bits);
  for (std::uint64_t h = 1; h < total; ++h) {
    const auto c = core::hilbert_decode_3d(h, bits);
    const int d = std::abs(int(c.i) - int(prev.i)) + std::abs(int(c.j) - int(prev.j)) +
                  std::abs(int(c.k) - int(prev.k));
    ASSERT_EQ(d, 1) << "discontinuity at h=" << h;
    prev = c;
  }
}

TEST(Hilbert, StartsAtOrigin) {
  for (unsigned bits = 1; bits <= 8; ++bits) {
    EXPECT_EQ(core::hilbert_decode_3d(0, bits), (core::Coord3D{0, 0, 0}));
    EXPECT_EQ(core::hilbert_encode_3d(0, 0, 0, bits), 0u);
  }
}

TEST(Hilbert, ZeroBitsDegenerates) {
  EXPECT_EQ(core::hilbert_encode_3d(0, 0, 0, 0), 0u);
  EXPECT_EQ(core::hilbert_decode_3d(0, 0), (core::Coord3D{0, 0, 0}));
}
