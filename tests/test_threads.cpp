// Tests for the thread pool and the work-assignment strategies.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <vector>

#include "sfcvis/threads/pool.hpp"
#include "sfcvis/threads/schedulers.hpp"

namespace threads = sfcvis::threads;

using threads::Pool;
using threads::StaticRoundRobin;
using threads::WorkQueue;

TEST(PoolTest, RunsJobOnEveryThreadExactlyOnce) {
  Pool pool(4);
  std::vector<std::atomic<int>> hits(4);
  pool.run([&](unsigned tid) { hits[tid].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(PoolTest, SequentialRegionsReuseWorkers) {
  Pool pool(3);
  std::atomic<int> total{0};
  for (int region = 0; region < 50; ++region) {
    pool.run([&](unsigned) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 150);
}

TEST(PoolTest, SingleThreadPoolWorks) {
  Pool pool(1);
  int value = 0;
  pool.run([&](unsigned tid) {
    EXPECT_EQ(tid, 0u);
    value = 42;
  });
  EXPECT_EQ(value, 42);
}

TEST(PoolTest, OversubscribedPoolCompletes) {
  // More threads than host cores (the bench sweeps rely on this).
  Pool pool(24);
  std::atomic<int> total{0};
  pool.run([&](unsigned) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 24);
}

TEST(PoolTest, ZeroThreadsRejected) { EXPECT_THROW(Pool(0), std::invalid_argument); }

TEST(PoolTest, RunIsABarrier) {
  // All side effects of a region are visible after run() returns.
  Pool pool(8);
  std::vector<int> values(8, 0);
  pool.run([&](unsigned tid) { values[tid] = static_cast<int>(tid) + 1; });
  for (unsigned t = 0; t < 8; ++t) {
    EXPECT_EQ(values[t], static_cast<int>(t) + 1);
  }
}

// ---------------------------------------------------------------------------
// StaticRoundRobin
// ---------------------------------------------------------------------------

TEST(RoundRobin, OwnerCycles) {
  const StaticRoundRobin rr(10, 3);
  EXPECT_EQ(rr.owner(0), 0u);
  EXPECT_EQ(rr.owner(1), 1u);
  EXPECT_EQ(rr.owner(2), 2u);
  EXPECT_EQ(rr.owner(3), 0u);
  EXPECT_EQ(rr.owner(9), 0u);
}

TEST(RoundRobin, ItemsForPartitionAllItems) {
  const StaticRoundRobin rr(11, 4);
  std::set<std::size_t> all;
  std::size_t count = 0;
  for (unsigned t = 0; t < 4; ++t) {
    for (const auto item : rr.items_for(t)) {
      EXPECT_EQ(rr.owner(item), t);
      all.insert(item);
      ++count;
    }
  }
  EXPECT_EQ(count, 11u);
  EXPECT_EQ(all.size(), 11u);
}

TEST(RoundRobin, ReplayOrderIsRoundInterleaved) {
  const StaticRoundRobin rr(5, 2);
  const auto order = rr.replay_order();
  const std::vector<threads::Assignment> expected = {
      {0, 0}, {1, 1}, {2, 0}, {3, 1}, {4, 0}};
  EXPECT_EQ(order, expected);
}

TEST(RoundRobin, ReplayOrderCoversEachItemOnce) {
  const StaticRoundRobin rr(1000, 7);
  const auto order = rr.replay_order();
  ASSERT_EQ(order.size(), 1000u);
  std::vector<bool> seen(1000, false);
  for (const auto& a : order) {
    EXPECT_FALSE(seen[a.item]);
    seen[a.item] = true;
    EXPECT_EQ(a.tid, a.item % 7);
  }
}

TEST(RoundRobin, MoreThreadsThanItems) {
  const StaticRoundRobin rr(2, 8);
  EXPECT_EQ(rr.replay_order().size(), 2u);
  EXPECT_TRUE(rr.items_for(5).empty());
}

// ---------------------------------------------------------------------------
// WorkQueue
// ---------------------------------------------------------------------------

TEST(WorkQueueTest, PopsEachItemOnceSerial) {
  WorkQueue q(5);
  std::vector<std::size_t> items;
  while (auto item = q.pop()) {
    items.push_back(*item);
  }
  EXPECT_EQ(items, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
  EXPECT_FALSE(q.pop().has_value());  // stays drained
}

TEST(WorkQueueTest, ResetRefills) {
  WorkQueue q(2);
  (void)q.pop();
  (void)q.pop();
  EXPECT_FALSE(q.pop().has_value());
  q.reset();
  EXPECT_TRUE(q.pop().has_value());
}

TEST(WorkQueueTest, ConcurrentPopsAreExactlyOnce) {
  const std::size_t n = 10000;
  WorkQueue q(n);
  Pool pool(8);
  std::vector<std::atomic<int>> claimed(n);
  pool.run([&](unsigned) {
    while (auto item = q.pop()) {
      claimed[*item].fetch_add(1);
    }
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(claimed[i].load(), 1) << "item " << i;
  }
}

// ---------------------------------------------------------------------------
// parallel_for helpers
// ---------------------------------------------------------------------------

TEST(ParallelFor, DynamicVisitsAllItems) {
  Pool pool(4);
  const std::size_t n = 5000;
  std::vector<std::atomic<int>> visits(n);
  threads::parallel_for_dynamic(pool, n, [&](std::size_t item, unsigned) {
    visits[item].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(visits[i].load(), 1);
  }
}

TEST(ParallelFor, StaticVisitsAllItemsWithOwner) {
  Pool pool(3);
  const std::size_t n = 100;
  std::vector<std::atomic<unsigned>> owner(n);
  std::vector<std::atomic<int>> visits(n);
  threads::parallel_for_static(pool, n, [&](std::size_t item, unsigned tid) {
    owner[item].store(tid);
    visits[item].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(visits[i].load(), 1);
    EXPECT_EQ(owner[i].load(), i % 3);
  }
}

TEST(ParallelFor, DynamicLoadBalancesUnevenWork) {
  // With wildly uneven item costs the dynamic queue must spread items
  // across threads rather than leave everything to thread 0.
  Pool pool(4);
  const std::size_t n = 400;
  std::vector<std::atomic<int>> per_thread(4);
  threads::parallel_for_dynamic(pool, n, [&](std::size_t item, unsigned tid) {
    if (item == 0) {
      // one giant item
      volatile double sink = 0;
      for (int s = 0; s < 2000000; ++s) {
        sink = sink + 1.0;
      }
    }
    per_thread[tid].fetch_add(1);
  });
  int total = 0, max_share = 0;
  for (const auto& c : per_thread) {
    total += c.load();
    max_share = std::max(max_share, c.load());
  }
  EXPECT_EQ(total, static_cast<int>(n));
  EXPECT_LT(max_share, static_cast<int>(n));
}

TEST(ParallelFor, ZeroItemsIsANoOp) {
  Pool pool(2);
  int calls = 0;
  std::mutex m;
  threads::parallel_for_dynamic(pool, 0, [&](std::size_t, unsigned) {
    const std::lock_guard lock(m);
    ++calls;
  });
  threads::parallel_for_static(pool, 0, [&](std::size_t, unsigned) {
    const std::lock_guard lock(m);
    ++calls;
  });
  EXPECT_EQ(calls, 0);
}

// ---------------------------------------------------------------------------
// OpenMP executor (optional backend)
// ---------------------------------------------------------------------------

#include "sfcvis/threads/omp_executor.hpp"

TEST(OmpExecutor, AvailabilityIsConsistent) {
  EXPECT_EQ(threads::openmp_available(), threads::openmp_available());
  if (threads::openmp_available()) {
    EXPECT_GE(threads::openmp_max_threads(), 1u);
  } else {
    EXPECT_EQ(threads::openmp_max_threads(), 0u);
  }
}

TEST(OmpExecutor, StaticVisitsAllItemsOnce) {
  if (!threads::openmp_available()) {
    GTEST_SKIP() << "built without OpenMP";
  }
  const std::size_t n = 4000;
  std::vector<std::atomic<int>> visits(n);
  ASSERT_TRUE(threads::parallel_for_omp_static(4, n, [&](std::size_t item, unsigned) {
    visits[item].fetch_add(1);
  }));
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(visits[i].load(), 1);
  }
}

TEST(OmpExecutor, DynamicVisitsAllItemsOnce) {
  if (!threads::openmp_available()) {
    GTEST_SKIP() << "built without OpenMP";
  }
  const std::size_t n = 4000;
  std::vector<std::atomic<int>> visits(n);
  ASSERT_TRUE(threads::parallel_for_omp_dynamic(4, n, [&](std::size_t item, unsigned tid) {
    EXPECT_LT(tid, 4u);
    visits[item].fetch_add(1);
  }));
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(visits[i].load(), 1);
  }
}

TEST(ParallelForState, VisitsAllItemsWithStaticOwnership) {
  Pool pool(3);
  const std::size_t n = 100;
  std::vector<std::atomic<unsigned>> owner(n);
  std::vector<std::atomic<int>> visits(n);
  threads::parallel_for_static_state(
      pool, n, [](unsigned tid) { return tid; },
      [&](unsigned& state, std::size_t item, unsigned tid) {
        EXPECT_EQ(state, tid);
        owner[item].store(tid);
        visits[item].fetch_add(1);
      });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(visits[i].load(), 1);
    EXPECT_EQ(owner[i].load(), i % 3);
  }
}

TEST(ParallelForState, MakeRunsOncePerActiveWorker) {
  Pool pool(4);
  std::atomic<int> makes{0};
  std::vector<std::atomic<int>> per_state_items(4);
  threads::parallel_for_static_state(
      pool, 50,
      [&](unsigned tid) {
        makes.fetch_add(1);
        return tid;
      },
      [&](unsigned& state, std::size_t, unsigned) {
        per_state_items[state].fetch_add(1);
      });
  EXPECT_EQ(makes.load(), 4);
  int total = 0;
  for (const auto& c : per_state_items) {
    total += c.load();
  }
  EXPECT_EQ(total, 50);
}

TEST(ParallelForState, IdleWorkersConstructNoState) {
  // 6 workers, 2 items: only workers 0 and 1 own items; the rest must not
  // pay for (possibly expensive) scratch construction.
  Pool pool(6);
  std::atomic<int> makes{0};
  std::vector<std::atomic<int>> visits(2);
  threads::parallel_for_static_state(
      pool, 2,
      [&](unsigned tid) {
        makes.fetch_add(1);
        return tid;
      },
      [&](unsigned&, std::size_t item, unsigned) { visits[item].fetch_add(1); });
  EXPECT_EQ(makes.load(), 2);
  EXPECT_EQ(visits[0].load(), 1);
  EXPECT_EQ(visits[1].load(), 1);
}

TEST(ParallelForState, StatePersistsAcrossItemsOfOneWorker) {
  // Each worker's state accumulates its item count; matches items_for().
  Pool pool(3);
  const std::size_t n = 31;
  std::vector<int> counts(3, -1);
  std::mutex mu;
  threads::parallel_for_static_state(
      pool, n, [](unsigned) { return 0; },
      [&](int& state, std::size_t item, unsigned tid) {
        ++state;
        const threads::StaticRoundRobin rr(n, 3);
        if (item == rr.items_for(tid).back()) {
          const std::lock_guard<std::mutex> lock(mu);
          counts[tid] = state;
        }
      });
  const threads::StaticRoundRobin rr(n, 3);
  for (unsigned t = 0; t < 3; ++t) {
    EXPECT_EQ(counts[t], static_cast<int>(rr.items_for(t).size()));
  }
}
