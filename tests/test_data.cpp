// Tests for the synthetic dataset generators and volume IO.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <numeric>

#include "sfcvis/data/combustion.hpp"
#include "sfcvis/data/noise.hpp"
#include "sfcvis/data/phantom.hpp"
#include "sfcvis/data/volume_io.hpp"

namespace core = sfcvis::core;
namespace data = sfcvis::data;

using core::ArrayOrderLayout;
using core::Extents3D;
using core::Grid3D;
using core::ZOrderLayout;

// ---------------------------------------------------------------------------
// Value noise / fBm
// ---------------------------------------------------------------------------

TEST(Noise, DeterministicPerSeed) {
  const data::ValueNoise3D a(5), b(5), c(6);
  EXPECT_EQ(a.sample(1.3f, 2.7f, 0.2f), b.sample(1.3f, 2.7f, 0.2f));
  EXPECT_NE(a.sample(1.3f, 2.7f, 0.2f), c.sample(1.3f, 2.7f, 0.2f));
}

TEST(Noise, BoundedToUnitInterval) {
  const data::ValueNoise3D n(11);
  for (int s = 0; s < 5000; ++s) {
    const float x = 0.013f * static_cast<float>(s);
    const float v = n.sample(x, 2.0f * x, 0.5f * x + 1.0f);
    EXPECT_GE(v, -1.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(Noise, InterpolatesLatticeSmoothly) {
  // Adjacent samples at 1/64 spacing must differ by far less than the
  // full range: no discontinuities inside lattice cells.
  const data::ValueNoise3D n(13);
  float prev = n.sample(0.0f, 0.4f, 0.9f);
  for (int s = 1; s <= 256; ++s) {
    const float v = n.sample(static_cast<float>(s) / 64.0f, 0.4f, 0.9f);
    EXPECT_LT(std::abs(v - prev), 0.35f);
    prev = v;
  }
}

TEST(Noise, FbmStaysBoundedAndAddsDetail) {
  const data::ValueNoise3D n(17);
  const data::FbmParams one_octave{1, 2.0f, 0.5f, 4.0f};
  const data::FbmParams five_octaves{5, 2.0f, 0.5f, 4.0f};
  double var1 = 0, var5 = 0, diff = 0;
  const int samples = 4000;
  for (int s = 0; s < samples; ++s) {
    const float x = 0.37f * static_cast<float>(s % 61);
    const float y = 0.21f * static_cast<float>(s % 47);
    const float z = 0.11f * static_cast<float>(s % 31);
    const float f1 = data::fbm(n, x, y, z, one_octave);
    const float f5 = data::fbm(n, x, y, z, five_octaves);
    EXPECT_GE(f5, -1.01f);
    EXPECT_LE(f5, 1.01f);
    var1 += f1 * f1;
    var5 += f5 * f5;
    diff += std::abs(f5 - f1);
  }
  EXPECT_GT(diff / samples, 0.01);  // octaves actually contribute
  (void)var1;
  (void)var5;
}

TEST(Noise, ZeroOctavesYieldsZero) {
  const data::ValueNoise3D n(1);
  EXPECT_EQ(data::fbm(n, 0.5f, 0.5f, 0.5f, data::FbmParams{0, 2.0f, 0.5f, 4.0f}), 0.0f);
}

// ---------------------------------------------------------------------------
// MRI phantom
// ---------------------------------------------------------------------------

TEST(Phantom, BackgroundIsZeroInsideSkullIsPositive) {
  const auto model = data::MriPhantom::shepp_logan();
  EXPECT_EQ(model.sample(0.02f, 0.02f, 0.02f), 0.0f);   // outside head
  EXPECT_EQ(model.sample(0.98f, 0.5f, 0.5f), 0.0f);
  const float skull = model.sample(0.5f, 0.95f * 0.5f + 0.5f * 0.92f, 0.5f);
  (void)skull;
  // Center of the head: skull (1.0) + brain (-0.8) = 0.2.
  EXPECT_NEAR(model.sample(0.5f, 0.5f, 0.5f), 0.2f, 1e-5f);
}

TEST(Phantom, VentriclesAreDarkerThanBrain) {
  const auto model = data::MriPhantom::shepp_logan();
  const float brain = model.sample(0.5f, 0.5f, 0.5f);
  // Right ventricle center (0.22, 0, 0) in [-1,1] frame -> (0.61, 0.5, 0.5).
  const float ventricle = model.sample(0.61f, 0.5f, 0.5f);
  EXPECT_LT(ventricle, brain);
}

TEST(Phantom, HasSharpEdges) {
  // Crossing the skull boundary produces a jump >= 0.5 within one voxel at
  // 128 resolution: the edge-preserving property the bilateral filter needs.
  const auto model = data::MriPhantom::shepp_logan();
  float max_jump = 0;
  float prev = model.sample(0.0f, 0.5f, 0.5f);
  for (int i = 1; i < 128; ++i) {
    const float v = model.sample(static_cast<float>(i) / 127.0f, 0.5f, 0.5f);
    max_jump = std::max(max_jump, std::abs(v - prev));
    prev = v;
  }
  EXPECT_GE(max_jump, 0.5f);
}

TEST(Phantom, FillIsLayoutAgnostic) {
  const Extents3D e{24, 24, 24};
  Grid3D<float, ArrayOrderLayout> ga(e);
  Grid3D<float, ZOrderLayout> gz(e);
  const data::PhantomParams params{.seed = 3, .texture_amplitude = 0.02f, .noise_sigma = 0.03f};
  data::fill_mri_phantom(ga, params);
  data::fill_mri_phantom(gz, params);
  ga.for_each_index([&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    ASSERT_EQ(ga.at(i, j, k), gz.at(i, j, k));
  });
}

TEST(Phantom, NoiseSigmaControlsRoughness) {
  const Extents3D e{32, 32, 32};
  Grid3D<float, ArrayOrderLayout> clean(e), noisy(e);
  data::fill_mri_phantom(clean, {.seed = 3, .texture_amplitude = 0.0f, .noise_sigma = 0.0f});
  data::fill_mri_phantom(noisy, {.seed = 3, .texture_amplitude = 0.0f, .noise_sigma = 0.1f});
  double clean_tv = 0, noisy_tv = 0;  // total variation along x
  for (std::uint32_t k = 0; k < e.nz; ++k) {
    for (std::uint32_t j = 0; j < e.ny; ++j) {
      for (std::uint32_t i = 0; i + 1 < e.nx; ++i) {
        clean_tv += std::abs(clean.at(i + 1, j, k) - clean.at(i, j, k));
        noisy_tv += std::abs(noisy.at(i + 1, j, k) - noisy.at(i, j, k));
      }
    }
  }
  EXPECT_GT(noisy_tv, 1.5 * clean_tv);
}

// ---------------------------------------------------------------------------
// Combustion field
// ---------------------------------------------------------------------------

TEST(Combustion, ValuesInUnitInterval) {
  const data::CombustionField field;
  for (int s = 0; s < 8000; ++s) {
    const float u = static_cast<float>(s % 20) / 19.0f;
    const float v = static_cast<float>((s / 20) % 20) / 19.0f;
    const float w = static_cast<float>(s / 400) / 19.0f;
    const float val = field.sample(u, v, w);
    EXPECT_GE(val, 0.0f);
    EXPECT_LE(val, 1.0f);
  }
}

TEST(Combustion, JetCoreIsFuelRich) {
  const data::CombustionField field;
  // On the jet axis near the nozzle the mixture fraction is ~1 (fuel);
  // far outside it is ~0 (oxidizer).
  EXPECT_GT(field.mixture_fraction(0.5f, 0.05f, 0.5f), 0.6f);
  EXPECT_LT(field.mixture_fraction(0.02f, 0.9f, 0.02f), 0.25f);
}

TEST(Combustion, FlameSheetIsBrightestNearStoichiometric) {
  data::CombustionParams params;
  const data::CombustionField field(params);
  // Scan radially out of the jet: the maximum response must exceed both the
  // core and the far field (the sheet sits between them).
  float core = field.sample(0.5f, 0.1f, 0.5f);
  float far = field.sample(0.05f, 0.1f, 0.05f);
  float best = 0;
  for (int s = 0; s <= 100; ++s) {
    const float u = 0.5f + 0.45f * static_cast<float>(s) / 100.0f;
    best = std::max(best, field.sample(u, 0.1f, 0.5f));
  }
  EXPECT_GT(best, core);
  EXPECT_GT(best, far);
  EXPECT_GT(best, 0.5f);
}

TEST(Combustion, DeterministicPerSeed) {
  data::CombustionParams a;
  a.seed = 3;
  data::CombustionParams b;
  b.seed = 4;
  const data::CombustionField fa1(a), fa2(a), fb(b);
  EXPECT_EQ(fa1.sample(0.3f, 0.4f, 0.5f), fa2.sample(0.3f, 0.4f, 0.5f));
  EXPECT_NE(fa1.sample(0.3f, 0.4f, 0.5f), fb.sample(0.3f, 0.4f, 0.5f));
}

TEST(Combustion, FieldHasStructureNotConstant) {
  const Extents3D e{32, 32, 32};
  Grid3D<float, ArrayOrderLayout> g(e);
  data::fill_combustion(g);
  float mn = 1e9f, mx = -1e9f;
  double sum = 0;
  g.for_each_index([&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    const float v = g.at(i, j, k);
    mn = std::min(mn, v);
    mx = std::max(mx, v);
    sum += v;
  });
  EXPECT_LT(mn, 0.1f);
  EXPECT_GT(mx, 0.6f);
  const double mean = sum / static_cast<double>(e.size());
  EXPECT_GT(mean, 0.01);
  EXPECT_LT(mean, 0.9);
}

// ---------------------------------------------------------------------------
// Volume IO
// ---------------------------------------------------------------------------

namespace {

std::filesystem::path temp_dir() {
  const auto dir = std::filesystem::temp_directory_path() / "sfcvis_test_io";
  std::filesystem::create_directories(dir);
  return dir;
}

}  // namespace

TEST(VolumeIO, SaveLoadRoundTrip) {
  const Extents3D e{8, 6, 4};
  Grid3D<float, ArrayOrderLayout> g(e);
  g.fill_from([](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    return static_cast<float>(i * 100 + j * 10 + k);
  });
  const auto path = temp_dir() / "roundtrip.bov";
  data::save_bov(path, data::to_raw(g));
  const auto loaded = data::load_bov(path);
  EXPECT_EQ(loaded.extents, e);
  ASSERT_EQ(loaded.samples.size(), e.size());
  std::size_t cursor = 0;
  g.for_each_index([&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    ASSERT_EQ(loaded.samples[cursor++], g.at(i, j, k));
  });
}

TEST(VolumeIO, RoundTripThroughZOrderGrid) {
  const Extents3D e{10, 5, 3};
  Grid3D<float, ZOrderLayout> g(e);
  g.fill_from([](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    return static_cast<float>(i) - 2.0f * static_cast<float>(j) + 0.5f * static_cast<float>(k);
  });
  const auto path = temp_dir() / "zorder.bov";
  data::save_bov(path, data::to_raw(g));

  Grid3D<float, ZOrderLayout> back(e);
  data::from_raw(data::load_bov(path), back);
  g.for_each_index([&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    ASSERT_EQ(back.at(i, j, k), g.at(i, j, k));
  });
}

TEST(VolumeIO, FromRawRejectsExtentsMismatch) {
  data::RawVolume vol;
  vol.extents = Extents3D{2, 2, 2};
  vol.samples.assign(8, 0.0f);
  Grid3D<float, ArrayOrderLayout> g(Extents3D{2, 2, 3});
  EXPECT_THROW(data::from_raw(vol, g), std::invalid_argument);
}

TEST(VolumeIO, LoadMissingFileThrows) {
  EXPECT_THROW(data::load_bov(temp_dir() / "nonexistent.bov"), std::runtime_error);
}

TEST(VolumeIO, SaveRejectsInconsistentVolume) {
  data::RawVolume vol;
  vol.extents = Extents3D{4, 4, 4};
  vol.samples.assign(3, 0.0f);  // wrong count
  EXPECT_THROW(data::save_bov(temp_dir() / "bad.bov", vol), std::runtime_error);
}

TEST(VolumeIO, TruncatedPayloadThrows) {
  const Extents3D e{4, 4, 4};
  Grid3D<float, ArrayOrderLayout> g(e);
  const auto path = temp_dir() / "trunc.bov";
  data::save_bov(path, data::to_raw(g));
  // Truncate the payload behind the header's back.
  auto raw = path;
  raw.replace_extension(".raw");
  std::filesystem::resize_file(raw, 10);
  EXPECT_THROW(data::load_bov(path), std::runtime_error);
}
