// core/align.hpp allocation policy: alignment, value-initialization
// (padding included), transparent-huge-page requests with reported
// fallback, and the first-touch hook — the memory layer of the paper's
// "layout is only half the story" argument.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "sfcvis/core/align.hpp"
#include "sfcvis/core/volume.hpp"

#if defined(__linux__)
#include <cerrno>
#endif

namespace {

using namespace sfcvis;
using core::AlignedBuffer;
using core::AllocReport;
using core::MemoryPolicy;

bool is_aligned(const void* p, std::size_t align) {
  return reinterpret_cast<std::uintptr_t>(p) % align == 0;
}

TEST(AlignedBufferTest, DefaultPolicyIsCacheLineAlignedAndZeroed) {
  const AlignedBuffer<float> buf(1000);
  ASSERT_EQ(buf.size(), 1000U);
  EXPECT_TRUE(is_aligned(buf.data(), core::kCacheLineBytes));
  for (std::size_t n = 0; n < buf.size(); ++n) {
    ASSERT_EQ(buf[n], 0.0f) << "element " << n;
  }
  const AllocReport& report = buf.report();
  EXPECT_FALSE(report.huge_pages_requested);
  EXPECT_FALSE(report.huge_page_fallback());
  EXPECT_EQ(report.error, 0);
  EXPECT_TRUE(report.message.empty());
}

TEST(AlignedBufferTest, EveryFacadeVolumeIsCacheLineAligned) {
  for (const auto kind : core::kAllLayoutKinds) {
    const core::AnyVolume v = core::make_volume(kind, core::Extents3D{20, 7, 5});
    EXPECT_TRUE(is_aligned(v.data(), core::kCacheLineBytes)) << core::to_string(kind);
  }
}

TEST(AlignedBufferTest, PaddingIsValueInitialized) {
  // Z-order pads 20x7x5 up to the enclosing power-of-two box; the padding
  // beyond the logical size must read as zero (memsim and the zsweep
  // drivers walk the padded curve).
  const core::AnyVolume v = core::make_volume(core::LayoutKind::kZOrder,
                                              core::Extents3D{20, 7, 5});
  ASSERT_GT(v.capacity(), v.size());
  for (std::size_t n = 0; n < v.capacity(); ++n) {
    ASSERT_EQ(v.data()[n], 0.0f) << "element " << n;
  }
}

TEST(AlignedBufferTest, SmallHugePageRequestFallsBackWithReason) {
  MemoryPolicy policy;
  policy.huge_pages = true;
  const AlignedBuffer<float> buf(1024, policy);  // 4 KiB << 2 MiB
  const AllocReport& report = buf.report();
  EXPECT_TRUE(report.huge_pages_requested);
  EXPECT_FALSE(report.huge_pages_applied);
  EXPECT_TRUE(report.huge_page_fallback());
  EXPECT_NE(report.message.find("smaller than one huge page"), std::string::npos)
      << report.message;
  // The fallback is still a working cache-line-aligned, zeroed buffer.
  EXPECT_TRUE(is_aligned(buf.data(), core::kCacheLineBytes));
  EXPECT_EQ(buf[0], 0.0f);
}

TEST(AlignedBufferTest, LargeHugePageRequestAlignsAndReports) {
  MemoryPolicy policy;
  policy.huge_pages = true;
  const std::size_t count = core::kHugePageBytes / sizeof(float);  // exactly 2 MiB
  const AlignedBuffer<float> buf(count, policy);
  const AllocReport& report = buf.report();
  EXPECT_TRUE(report.huge_pages_requested);
  // Large enough → the buffer is huge-page aligned regardless of whether
  // madvise succeeded.
  EXPECT_TRUE(is_aligned(buf.data(), core::kHugePageBytes));
  // Mirrors the perfmon::OpenFailure idiom: either the request applied, or
  // the report says why it did not.
  if (report.huge_pages_applied) {
    EXPECT_EQ(report.error, 0);
    EXPECT_TRUE(report.message.empty());
  } else {
    EXPECT_TRUE(report.huge_page_fallback());
    EXPECT_FALSE(report.message.empty());
  }
  for (std::size_t n = 0; n < count; n += 4096) {
    ASSERT_EQ(buf[n], 0.0f) << "element " << n;
  }
}

TEST(AlignedBufferTest, DescribeMadviseErrorMapsKnownCodes) {
  EXPECT_TRUE(core::describe_madvise_error(0).empty());
#if defined(__linux__)
  EXPECT_NE(core::describe_madvise_error(EINVAL).find("EINVAL"), std::string::npos);
  EXPECT_NE(core::describe_madvise_error(EINVAL).find("transparent huge pages"),
            std::string::npos);
  EXPECT_NE(core::describe_madvise_error(ENOMEM).find("ENOMEM"), std::string::npos);
#endif
  EXPECT_NE(core::describe_madvise_error(9999).find("errno 9999"), std::string::npos);
}

TEST(AlignedBufferTest, FirstTouchHookRunsAndContentsStayZero) {
  MemoryPolicy policy;
  policy.first_touch = true;
  int calls = 0;
  const core::FirstTouchFn hook =
      [&](std::size_t count,
          const std::function<void(std::size_t, std::size_t)>& touch) {
        ++calls;
        const std::size_t half = count / 2;
        touch(0, half);
        touch(half, count);
      };
  const AlignedBuffer<float> buf(257, policy, hook);
  EXPECT_EQ(calls, 1);
  const AllocReport& report = buf.report();
  EXPECT_TRUE(report.first_touch_requested);
  EXPECT_TRUE(report.first_touch_applied);
  for (std::size_t n = 0; n < buf.size(); ++n) {
    ASSERT_EQ(buf[n], 0.0f) << "element " << n;
  }
}

TEST(AlignedBufferTest, FirstTouchWithoutHookFallsBackToSerialInit) {
  MemoryPolicy policy;
  policy.first_touch = true;
  const AlignedBuffer<float> buf(128, policy);
  EXPECT_TRUE(buf.report().first_touch_requested);
  EXPECT_FALSE(buf.report().first_touch_applied);
  for (std::size_t n = 0; n < buf.size(); ++n) {
    ASSERT_EQ(buf[n], 0.0f);
  }
}

TEST(AlignedBufferTest, FacadeExposesPolicyReport) {
  core::VolumeOpts opts;
  opts.memory.huge_pages = true;
  const core::AnyVolume v =
      core::make_volume(core::LayoutKind::kArray, core::Extents3D::cube(8), opts);
  // 8^3 floats is far below a huge page: the facade surfaces the same
  // reported fallback the raw buffer gives.
  EXPECT_TRUE(v.alloc_report().huge_page_fallback());
  EXPECT_FALSE(v.alloc_report().message.empty());
}

TEST(AlignedBufferTest, CopyAndMovePreserveContentsAndAlignment) {
  AlignedBuffer<float> src(64);
  for (std::size_t n = 0; n < src.size(); ++n) {
    src[n] = static_cast<float>(n);
  }
  const AlignedBuffer<float> copy(src);
  ASSERT_EQ(copy.size(), 64U);
  EXPECT_TRUE(is_aligned(copy.data(), core::kCacheLineBytes));
  for (std::size_t n = 0; n < copy.size(); ++n) {
    ASSERT_EQ(copy[n], static_cast<float>(n));
  }
  const AlignedBuffer<float> moved(std::move(src));
  ASSERT_EQ(moved.size(), 64U);
  EXPECT_EQ(moved[63], 63.0f);
  EXPECT_EQ(src.size(), 0U);  // NOLINT(bugprone-use-after-move): moved-from state is pinned
}

}  // namespace
