// Tests for the bilateral filter's sliding-window gather fast path
// (filters/bilateral.hpp: BilateralParams::use_gather) and its supporting
// pieces: fast_exp_neg, the quantized photometric LUT, and the degenerate
// volume shapes where every driver must fall back to the clamped kernel.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "sfcvis/exec/execution_context.hpp"
#include "sfcvis/data/phantom.hpp"
#include "sfcvis/filters/bilateral.hpp"
#include "sfcvis/filters/fastmath.hpp"
#include "sfcvis/verify/diff.hpp"

namespace core = sfcvis::core;
namespace exec = sfcvis::exec;
namespace data = sfcvis::data;
namespace filters = sfcvis::filters;
namespace verify = sfcvis::verify;
namespace threads = sfcvis::threads;

using core::ArrayOrderLayout;
using core::Extents3D;
using core::Grid3D;
using core::ZOrderLayout;
using filters::BilateralParams;
using filters::LoopOrder;
using filters::PencilAxis;

namespace {

/// Noisy step volume (same stimulus as test_filters.cpp).
template <class GridT>
void fill_noisy_step(GridT& g) {
  g.fill_from([](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    const float base = i < 8 ? 0.2f : 0.8f;
    const std::uint32_t h = (i * 73856093u) ^ (j * 19349663u) ^ (k * 83492791u);
    const float noise = (static_cast<float>(h % 1000) / 1000.0f - 0.5f) * 0.06f;
    return base + noise;
  });
}

void expect_grids_near(const Grid3D<float, ArrayOrderLayout>& a,
                       const Grid3D<float, ArrayOrderLayout>& b, float tol) {
  a.for_each_index([&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    ASSERT_NEAR(a.at(i, j, k), b.at(i, j, k), tol) << i << "," << j << "," << k;
  });
}

void expect_grids_identical(const Grid3D<float, ArrayOrderLayout>& a,
                            const Grid3D<float, ArrayOrderLayout>& b) {
  a.for_each_index([&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    ASSERT_EQ(a.at(i, j, k), b.at(i, j, k)) << i << "," << j << "," << k;
  });
}

/// Runs bilateral_parallel over `src` with `params` and returns the output.
template <class Layout>
Grid3D<float, ArrayOrderLayout> run_parallel(const Grid3D<float, Layout>& src,
                                             const BilateralParams& params,
                                             unsigned nthreads = 3) {
  Grid3D<float, ArrayOrderLayout> dst(src.extents());
  exec::ExecutionContext pool(nthreads);
  filters::bilateral_parallel(src, dst, params, pool);
  return dst;
}

}  // namespace

// ---------------------------------------------------------------------------
// fast_exp_neg
// ---------------------------------------------------------------------------

TEST(FastExp, MatchesExpWithinRelativeBound) {
  // Two error terms: the polynomial truncation (~1e-6 relative) plus the
  // single-precision argument reduction, whose absolute error in
  // t = -u log2(e) grows like u * 2^-24 and turns into relative output
  // error of the same order. Measured worst case is ~7.4e-6 at u ~ 80;
  // in the filter's operating range (u < 8 for non-negligible weights)
  // the bound is ~2e-6.
  for (double u = 0.0; u <= 80.0; u += 0.003) {
    const float approx = filters::fast_exp_neg(static_cast<float>(u));
    const double exact = std::exp(-u);
    const double rel_tol = 1e-6 + 1.2e-7 * u;
    ASSERT_NEAR(approx, exact, rel_tol * exact + 1e-40) << "u=" << u;
  }
}

TEST(FastExp, ZeroIsExactlyOne) { EXPECT_EQ(filters::fast_exp_neg(0.0f), 1.0f); }

TEST(FastExp, MaxUlpPinnedOverOperatingRange) {
  // Pins the worst-case ulp distance from the correctly-rounded exp(-u)
  // over u in [0, 16] — past that exp(-u) < 1.2e-7 and every range weight
  // is noise. A stride-7 sweep of ALL representable floats in the range
  // measured max 15 ulp (at u ~ 13.86); the pin leaves headroom for the
  // unswept neighbours but must catch any coefficient or argument-
  // reduction regression, which shows up hundreds of ulps away. The test
  // walks the same bit-space at a coarser prime stride plus a dense
  // window around the measured worst case.
  constexpr std::uint64_t kMaxUlp = 24;
  const auto check_bits = [](std::uint32_t bits, std::uint64_t& worst) {
    const float u = std::bit_cast<float>(bits);
    const float approx = filters::fast_exp_neg(u);
    const auto exact = static_cast<float>(std::exp(-static_cast<double>(u)));
    const std::uint64_t d = verify::ulp_distance(approx, exact);
    worst = d > worst ? d : worst;
  };
  std::uint64_t worst = 0;
  const auto lo = std::bit_cast<std::uint32_t>(0.0f);
  const auto hi = std::bit_cast<std::uint32_t>(16.0f);
  for (std::uint32_t bits = lo; bits <= hi; bits += 641) {
    check_bits(bits, worst);
  }
  for (std::uint32_t bits = std::bit_cast<std::uint32_t>(13.5f);
       bits <= std::bit_cast<std::uint32_t>(14.25f); ++bits) {
    check_bits(bits, worst);
  }
  EXPECT_LE(worst, kMaxUlp) << "fast_exp_neg drifted from its pinned accuracy";
  EXPECT_GE(worst, 4u) << "measured error implausibly small; is the sweep running?";
}

TEST(FastExp, HugeInputUnderflowsGracefully) {
  // Beyond the clamp knee the result saturates near 2^-125 instead of
  // producing garbage; it must stay finite, tiny, and non-negative.
  for (const float u : {100.0f, 1000.0f, 1e30f}) {
    const float v = filters::fast_exp_neg(u);
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0f);
    EXPECT_LT(v, 1e-37f);
  }
}

// ---------------------------------------------------------------------------
// Quantized photometric LUT
// ---------------------------------------------------------------------------

TEST(RangeLut, WeightLevelErrorBounded) {
  const float sigma_r = 0.1f;
  BilateralParams params;
  params.sigma_range = sigma_r;
  params.use_range_lut = true;
  const filters::BilateralWeights w(params);
  ASSERT_TRUE(w.has_range_lut());
  const float inv2sr2 = 1.0f / (2.0f * sigma_r * sigma_r);
  for (double diff = 0.0; diff <= 1.0; diff += 0.0004) {
    const float d = static_cast<float>(diff);
    const float exact = filters::BilateralWeights::range(d, inv2sr2);
    const float lut = w.range_lut(d);
    // Interpolation bound: (du^2)/8 = (16/1024)^2 / 8 ~ 3.05e-5, plus the
    // exp(-16) ~ 1.1e-7 tail clamp.
    ASSERT_NEAR(lut, exact, 4e-5f) << "diff=" << diff;
  }
}

TEST(RangeLut, OnlyBuiltWhenRequested) {
  BilateralParams params;
  EXPECT_FALSE(filters::BilateralWeights(params).has_range_lut());
  const filters::BilateralWeights plain(params.radius, params.sigma_spatial);
  EXPECT_FALSE(plain.has_range_lut());
  params.use_range_lut = true;
  EXPECT_TRUE(filters::BilateralWeights(params).has_range_lut());
}

TEST(RangeLut, ParamsCtorMatchesSpatialTable) {
  BilateralParams params;
  params.radius = 2;
  params.sigma_spatial = 1.7f;
  const filters::BilateralWeights a(params);
  const filters::BilateralWeights b(params.radius, params.sigma_spatial);
  EXPECT_EQ(a.spatial_table(), b.spatial_table());
}

// ---------------------------------------------------------------------------
// Gather fast path vs the exact kernels
// ---------------------------------------------------------------------------

TEST(BilateralGather, ExactModeBitIdenticalToReferenceZPencil) {
  // (pz, xyz) gather tap order equals bilateral_reference's dz,dy,dx loop
  // nest, and exact mode performs the same per-tap arithmetic — output
  // must be bit-identical on both layouts.
  const Extents3D e = Extents3D::cube(14);
  Grid3D<float, ArrayOrderLayout> src(e);
  fill_noisy_step(src);
  Grid3D<float, ZOrderLayout> zsrc(e);
  zsrc.copy_from(src);
  Grid3D<float, ArrayOrderLayout> ref(e);
  filters::bilateral_reference(src, ref, 2, 1.5f, 0.1f);

  BilateralParams params;
  params.radius = 2;
  params.pencil = PencilAxis::kZ;
  params.order = LoopOrder::kXYZ;
  params.use_gather = true;
  params.fast_exp = false;
  expect_grids_identical(run_parallel(src, params), ref);
  expect_grids_identical(run_parallel(zsrc, params), ref);
}

TEST(BilateralGather, ExactModeBitIdenticalToLegacyXPencilZyx) {
  // (px, zyx): gather order [dp=dx][du=dy][dv=dz] equals the legacy kZYX
  // loop nest, so exact mode must match the non-gather driver bitwise.
  const Extents3D e{12, 13, 11};
  Grid3D<float, ArrayOrderLayout> src(e);
  fill_noisy_step(src);

  BilateralParams params;
  params.radius = 2;
  params.pencil = PencilAxis::kX;
  params.order = LoopOrder::kZYX;
  params.use_gather = false;
  const auto legacy = run_parallel(src, params);
  params.use_gather = true;
  params.fast_exp = false;
  expect_grids_identical(run_parallel(src, params), legacy);
}

TEST(BilateralGather, FastExpWithinTolAllAxesAndLayouts) {
  const Extents3D e{13, 12, 14};
  Grid3D<float, ArrayOrderLayout> src(e);
  fill_noisy_step(src);
  Grid3D<float, ZOrderLayout> zsrc(e);
  zsrc.copy_from(src);
  Grid3D<float, ArrayOrderLayout> ref(e);
  filters::bilateral_reference(src, ref, 2, 1.5f, 0.1f);

  for (const PencilAxis axis : {PencilAxis::kX, PencilAxis::kY, PencilAxis::kZ}) {
    BilateralParams params;
    params.radius = 2;
    params.pencil = axis;
    params.use_gather = true;
    params.fast_exp = true;
    expect_grids_near(run_parallel(src, params), ref, 1e-5f);
    expect_grids_near(run_parallel(zsrc, params), ref, 1e-5f);
  }
}

TEST(BilateralGather, RangeLutOutputWithinLooseTol) {
  const Extents3D e = Extents3D::cube(12);
  Grid3D<float, ArrayOrderLayout> src(e);
  fill_noisy_step(src);
  Grid3D<float, ArrayOrderLayout> ref(e);
  filters::bilateral_reference(src, ref, 2, 1.5f, 0.1f);

  BilateralParams params;
  params.radius = 2;
  params.pencil = PencilAxis::kZ;
  params.use_gather = true;
  params.use_range_lut = true;
  expect_grids_near(run_parallel(src, params), ref, 5e-4f);
}

TEST(BilateralGather, MatchesReferenceAcrossRadiiAndThreadCounts) {
  const Extents3D e = Extents3D::cube(11);
  Grid3D<float, ArrayOrderLayout> src(e);
  data::fill_mri_phantom(src);
  for (const unsigned radius : {1u, 2u, 3u}) {
    Grid3D<float, ArrayOrderLayout> ref(e);
    filters::bilateral_reference(src, ref, radius, 1.5f, 0.1f);
    for (const unsigned nthreads : {1u, 2u, 5u}) {
      BilateralParams params;
      params.radius = radius;
      params.pencil = PencilAxis::kZ;
      params.use_gather = true;
      expect_grids_near(run_parallel(src, params, nthreads), ref, 1e-5f);
    }
  }
}

// ---------------------------------------------------------------------------
// Full mode-combination matrix
// ---------------------------------------------------------------------------

TEST(BilateralGather, FullModeCombinationMatrix) {
  // Sweeps gather x {exact, fast_exp, lut, fast_exp+lut} x all three pencil
  // axes x both iteration orders, on both layouts — the combinations the
  // targeted tests above only sample. Accuracy tiers vs the serial
  // reference follow the documented contracts; cross-layout outputs must
  // be bit-identical for every combination.
  const Extents3D e{12, 11, 13};
  Grid3D<float, ArrayOrderLayout> src(e);
  fill_noisy_step(src);
  Grid3D<float, ZOrderLayout> zsrc(e);
  zsrc.copy_from(src);
  Grid3D<float, ArrayOrderLayout> ref(e);
  filters::bilateral_reference(src, ref, 2, 1.5f, 0.1f);

  for (const PencilAxis axis : {PencilAxis::kX, PencilAxis::kY, PencilAxis::kZ}) {
    for (const LoopOrder order : {LoopOrder::kXYZ, LoopOrder::kZYX}) {
      for (const bool fast : {false, true}) {
        for (const bool lut : {false, true}) {
          BilateralParams params;
          params.radius = 2;
          params.pencil = axis;
          params.order = order;
          params.use_gather = true;
          params.fast_exp = fast;
          params.use_range_lut = lut;
          SCOPED_TRACE(::testing::Message()
                       << "axis=" << static_cast<int>(axis)
                       << " order=" << static_cast<int>(order) << " fast=" << fast
                       << " lut=" << lut);

          const auto out = run_parallel(src, params);
          const auto zout = run_parallel(zsrc, params);
          expect_grids_identical(out, zout);  // layout transparency, always

          if (lut) {
            expect_grids_near(out, ref, 5e-4f);
          } else if (fast) {
            expect_grids_near(out, ref, 1e-5f);
          } else if (axis == PencilAxis::kZ && order == LoopOrder::kXYZ) {
            expect_grids_identical(out, ref);  // shared tap order: exact
          } else {
            expect_grids_near(out, ref, 1e-5f);  // reassociation only
          }
        }
      }
    }
  }
}

TEST(BilateralGather, LutTakesPrecedenceOverFastExp) {
  // With both approximations requested the kernel uses the LUT (fast_exp
  // applies only when the LUT is off); the both-set configuration must be
  // bit-identical to lut-only, not a third numeric behaviour.
  const Extents3D e = Extents3D::cube(10);
  Grid3D<float, ArrayOrderLayout> src(e);
  fill_noisy_step(src);
  BilateralParams params;
  params.pencil = PencilAxis::kZ;
  params.use_gather = true;
  params.use_range_lut = true;
  params.fast_exp = false;
  const auto lut_only = run_parallel(src, params);
  params.fast_exp = true;
  expect_grids_identical(run_parallel(src, params), lut_only);
}

// ---------------------------------------------------------------------------
// Degenerate shapes: every driver vs the reference
// ---------------------------------------------------------------------------

namespace {

/// Checks legacy pencil, gather (exact + fast), and zsweep against the
/// serial reference for one volume shape and radius.
void check_degenerate(const Extents3D& e, unsigned radius) {
  Grid3D<float, ArrayOrderLayout> src(e);
  fill_noisy_step(src);
  Grid3D<float, ZOrderLayout> zsrc(e);
  zsrc.copy_from(src);
  Grid3D<float, ArrayOrderLayout> ref(e);
  filters::bilateral_reference(src, ref, radius, 1.5f, 0.1f);

  for (const PencilAxis axis : {PencilAxis::kX, PencilAxis::kY, PencilAxis::kZ}) {
    BilateralParams params;
    params.radius = radius;
    params.pencil = axis;

    params.use_gather = false;
    expect_grids_identical(run_parallel(src, params), ref);
    expect_grids_identical(run_parallel(zsrc, params), ref);

    params.use_gather = true;
    params.fast_exp = false;
    if (axis == PencilAxis::kZ) {
      // Only z-pencils share the reference's tap summation order; x/y
      // gather pencils reassociate the sum (still well under 1e-5).
      expect_grids_identical(run_parallel(src, params), ref);
      expect_grids_identical(run_parallel(zsrc, params), ref);
    } else {
      expect_grids_near(run_parallel(src, params), ref, 1e-5f);
      expect_grids_near(run_parallel(zsrc, params), ref, 1e-5f);
    }

    params.fast_exp = true;
    expect_grids_near(run_parallel(src, params), ref, 1e-5f);
  }

  BilateralParams zparams;
  zparams.radius = radius;
  Grid3D<float, ArrayOrderLayout> dst(e);
  exec::ExecutionContext pool(3);
  filters::bilateral_zsweep(src, dst, zparams, pool);
  expect_grids_identical(dst, ref);
  filters::bilateral_zsweep(zsrc, dst, zparams, pool);
  expect_grids_identical(dst, ref);
}

}  // namespace

TEST(BilateralDegenerate, UnitExtentAxes) {
  check_degenerate(Extents3D{1, 9, 9}, 2);
  check_degenerate(Extents3D{9, 1, 9}, 2);
  check_degenerate(Extents3D{9, 9, 1}, 2);
}

TEST(BilateralDegenerate, PencilNoLongerThanStencil) {
  // len == 2r and len == 2r + 1: the gather path must fall back (it needs
  // len > 2r) and still match.
  check_degenerate(Extents3D::cube(4), 2);
  check_degenerate(Extents3D::cube(5), 2);
}

TEST(BilateralDegenerate, RadiusAtLeastExtent) {
  check_degenerate(Extents3D::cube(3), 3);
  check_degenerate(Extents3D{3, 4, 5}, 4);
  check_degenerate(Extents3D{1, 1, 1}, 1);
}

TEST(BilateralDegenerate, ThinSlabs) {
  check_degenerate(Extents3D{9, 9, 2}, 2);
  check_degenerate(Extents3D{2, 9, 9}, 2);
}
