// Tests for the 2D layouts, Grid2D, and the 2D bilateral filter.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sfcvis/exec/execution_context.hpp"
#include "sfcvis/core/grid2d.hpp"
#include "sfcvis/core/morton.hpp"
#include "sfcvis/filters/bilateral2d.hpp"

namespace core = sfcvis::core;
namespace exec = sfcvis::exec;
namespace filters = sfcvis::filters;
namespace threads = sfcvis::threads;

using core::ArrayOrderLayout2D;
using core::Extents2D;
using core::Grid2D;
using core::TiledLayout2D;
using core::ZOrderLayout2D;

template <class L>
class Layout2DTypedTest : public ::testing::Test {};

using All2DLayouts = ::testing::Types<ArrayOrderLayout2D, ZOrderLayout2D, TiledLayout2D>;
TYPED_TEST_SUITE(Layout2DTypedTest, All2DLayouts);

TYPED_TEST(Layout2DTypedTest, InjectiveAndInBounds) {
  for (const Extents2D e : {Extents2D{16, 16}, Extents2D{13, 7}, Extents2D{64, 2},
                            Extents2D{1, 1}}) {
    const TypeParam layout(e);
    std::vector<bool> seen(layout.required_capacity(), false);
    for (std::uint32_t j = 0; j < e.ny; ++j) {
      for (std::uint32_t i = 0; i < e.nx; ++i) {
        const auto idx = layout.index(i, j);
        ASSERT_LT(idx, seen.size());
        ASSERT_FALSE(seen[idx]);
        seen[idx] = true;
      }
    }
    EXPECT_GE(layout.required_capacity(), e.size());
  }
}

TYPED_TEST(Layout2DTypedTest, RejectsZeroExtent) {
  EXPECT_THROW(TypeParam(Extents2D{0, 4}), std::invalid_argument);
  EXPECT_THROW(TypeParam(Extents2D{4, 0}), std::invalid_argument);
}

TEST(ZOrder2D, MatchesMortonOnPow2Square) {
  const Extents2D e = Extents2D::square(32);
  const ZOrderLayout2D layout(e);
  for (std::uint32_t j = 0; j < e.ny; ++j) {
    for (std::uint32_t i = 0; i < e.nx; ++i) {
      ASSERT_EQ(layout.index(i, j), core::morton_encode_2d(i, j));
    }
  }
  EXPECT_EQ(layout.required_capacity(), e.size());
}

TEST(ZOrder2D, AnisotropicIsCompact) {
  // 64x2: padded extents are already pow2 -> capacity equals size.
  const ZOrderLayout2D layout(Extents2D{64, 2});
  EXPECT_EQ(layout.required_capacity(), 128u);
}

TEST(ArrayOrder2D, ClosedForm) {
  const ArrayOrderLayout2D layout(Extents2D{10, 4});
  EXPECT_EQ(layout.index(0, 0), 0u);
  EXPECT_EQ(layout.index(9, 0), 9u);
  EXPECT_EQ(layout.index(0, 1), 10u);
  EXPECT_EQ(layout.index(9, 3), 39u);
}

TEST(Tiled2D, IntraTileContiguity) {
  const TiledLayout2D layout(Extents2D::square(16), 4);
  EXPECT_EQ(layout.index(1, 0), layout.index(0, 0) + 1);
  EXPECT_EQ(layout.index(4, 0), 16u);  // next tile starts a fresh block
  EXPECT_THROW(TiledLayout2D(Extents2D::square(16), 3), std::invalid_argument);
}

TEST(Grid2DTest, FillReadClampConvert) {
  const Extents2D e{9, 6};
  Grid2D<float, ArrayOrderLayout2D> a(e);
  a.fill_from([](std::uint32_t i, std::uint32_t j) {
    return static_cast<float>(i + 100 * j);
  });
  EXPECT_EQ(a.at(3, 4), 403.0f);
  EXPECT_EQ(a.at_clamped(-2, 2), 200.0f);
  EXPECT_EQ(a.at_clamped(20, 7), 508.0f);

  const auto z = core::convert_layout2d<ZOrderLayout2D>(a);
  const auto t = core::convert_layout2d<TiledLayout2D>(z);
  const auto back = core::convert_layout2d<ArrayOrderLayout2D>(t);
  a.for_each_index([&](std::uint32_t i, std::uint32_t j) {
    ASSERT_EQ(back.at(i, j), a.at(i, j));
  });
}

TEST(Grid2DTest, ZeroInitializedAndAligned) {
  const Grid2D<float, ZOrderLayout2D> g(Extents2D{12, 12});
  g.for_each_index([&](std::uint32_t i, std::uint32_t j) { ASSERT_EQ(g.at(i, j), 0.0f); });
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(g.data()) % core::kCacheLineBytes, 0u);
}

// ---------------------------------------------------------------------------
// 2D bilateral filter
// ---------------------------------------------------------------------------

namespace {

template <class GridT>
void fill_noisy_edge(GridT& g) {
  g.fill_from([](std::uint32_t i, std::uint32_t j) {
    const float base = i < 8 ? 0.2f : 0.8f;
    const std::uint32_t h = (i * 73856093u) ^ (j * 19349663u);
    return base + (static_cast<float>(h % 1000) / 1000.0f - 0.5f) * 0.06f;
  });
}

}  // namespace

TEST(Bilateral2D, IdentityOnConstantImage) {
  const Extents2D e{16, 16};
  Grid2D<float, ArrayOrderLayout2D> src(e), dst(e);
  src.fill_from([](auto, auto) { return 0.5f; });
  exec::ExecutionContext pool(2);
  filters::bilateral2d_parallel(src, dst, {}, pool);
  dst.for_each_index([&](std::uint32_t i, std::uint32_t j) {
    ASSERT_NEAR(dst.at(i, j), 0.5f, 1e-6f);
  });
}

TEST(Bilateral2D, LayoutAndPencilTransparent) {
  const Extents2D e{17, 11};
  Grid2D<float, ArrayOrderLayout2D> src(e), expected(e), got(e);
  fill_noisy_edge(src);
  const auto src_z = core::convert_layout2d<ZOrderLayout2D>(src);
  const auto src_t = core::convert_layout2d<TiledLayout2D>(src);
  exec::ExecutionContext pool(3);
  filters::Bilateral2DParams params{1, 1.5f, 0.15f, filters::PencilAxis::kX};
  filters::bilateral2d_parallel(src, expected, params, pool);

  params.pencil = filters::PencilAxis::kY;
  filters::bilateral2d_parallel(src_z, got, params, pool);
  expected.for_each_index([&](std::uint32_t i, std::uint32_t j) {
    ASSERT_NEAR(got.at(i, j), expected.at(i, j), 1e-6f);
  });
  filters::bilateral2d_parallel(src_t, got, params, pool);
  expected.for_each_index([&](std::uint32_t i, std::uint32_t j) {
    ASSERT_NEAR(got.at(i, j), expected.at(i, j), 1e-6f);
  });
}

TEST(Bilateral2D, SmoothsNoiseAndKeepsEdge) {
  const Extents2D e{16, 16};
  Grid2D<float, ArrayOrderLayout2D> src(e), dst(e);
  fill_noisy_edge(src);
  exec::ExecutionContext pool(2);
  filters::bilateral2d_parallel(src, dst, {2, 2.0f, 0.15f, filters::PencilAxis::kX}, pool);
  // Noise within the left region shrinks ...
  auto variance = [&](const auto& g) {
    double sum = 0, sum2 = 0;
    int n = 0;
    for (std::uint32_t j = 2; j < 14; ++j) {
      for (std::uint32_t i = 2; i < 6; ++i) {
        sum += g.at(i, j);
        sum2 += g.at(i, j) * g.at(i, j);
        ++n;
      }
    }
    const double mean = sum / n;
    return sum2 / n - mean * mean;
  };
  EXPECT_LT(variance(dst), 0.3 * variance(src));
  // ... while the step edge at i = 7|8 survives.
  double edge = 0;
  for (std::uint32_t j = 0; j < 16; ++j) {
    edge += std::abs(dst.at(8, j) - dst.at(7, j));
  }
  EXPECT_GT(edge / 16.0, 0.35);
}
