// Tests for the runtime Indexer facade (paper Sec. III-C) and extents
// helpers.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sfcvis/core/extents.hpp"
#include "sfcvis/core/indexer.hpp"
#include "sfcvis/core/layout.hpp"

namespace core = sfcvis::core;

using core::Extents3D;
using core::Indexer;
using core::Order;

TEST(IndexerTest, ArrayOrderMatchesLayout) {
  const Extents3D e{24, 12, 6};
  const Indexer idx(Order::kArray, e);
  const core::ArrayOrderLayout layout(e);
  for (std::uint32_t k = 0; k < e.nz; ++k) {
    for (std::uint32_t j = 0; j < e.ny; ++j) {
      for (std::uint32_t i = 0; i < e.nx; ++i) {
        ASSERT_EQ(idx.getIndex(i, j, k), layout.index(i, j, k));
      }
    }
  }
  EXPECT_EQ(idx.required_capacity(), e.size());
}

TEST(IndexerTest, ZOrderMatchesLayout) {
  const Extents3D e{24, 12, 6};
  const Indexer idx(Order::kZ, e);
  const core::ZOrderLayout layout(e);
  for (std::uint32_t k = 0; k < e.nz; ++k) {
    for (std::uint32_t j = 0; j < e.ny; ++j) {
      for (std::uint32_t i = 0; i < e.nx; ++i) {
        ASSERT_EQ(idx.getIndex(i, j, k), layout.index(i, j, k));
      }
    }
  }
  EXPECT_EQ(idx.required_capacity(), layout.required_capacity());
}

TEST(IndexerTest, ZOrderIsInjective) {
  const Extents3D e{9, 7, 5};
  const Indexer idx(Order::kZ, e);
  std::vector<bool> seen(idx.required_capacity(), false);
  for (std::uint32_t k = 0; k < e.nz; ++k) {
    for (std::uint32_t j = 0; j < e.ny; ++j) {
      for (std::uint32_t i = 0; i < e.nx; ++i) {
        const auto v = idx.getIndex(i, j, k);
        ASSERT_LT(v, seen.size());
        ASSERT_FALSE(seen[v]);
        seen[v] = true;
      }
    }
  }
}

TEST(IndexerTest, OrderAndExtentsAccessors) {
  const Extents3D e{8, 8, 8};
  EXPECT_EQ(Indexer(Order::kArray, e).order(), Order::kArray);
  EXPECT_EQ(Indexer(Order::kZ, e).order(), Order::kZ);
  EXPECT_EQ(Indexer(Order::kZ, e).extents(), e);
}

TEST(IndexerTest, ThrowsOnInvalidExtents) {
  EXPECT_THROW(Indexer(Order::kArray, Extents3D{0, 1, 1}), std::invalid_argument);
  EXPECT_THROW(Indexer(Order::kZ, Extents3D{1, 0, 1}), std::invalid_argument);
}

TEST(IndexerTest, ToStringMatchesFigureLabels) {
  EXPECT_EQ(core::to_string(Order::kArray), "a-order");
  EXPECT_EQ(core::to_string(Order::kZ), "z-order");
}

// ---------------------------------------------------------------------------
// Extents helpers
// ---------------------------------------------------------------------------

TEST(Extents, NextPow2) {
  EXPECT_EQ(core::next_pow2(0), 1u);
  EXPECT_EQ(core::next_pow2(1), 1u);
  EXPECT_EQ(core::next_pow2(2), 2u);
  EXPECT_EQ(core::next_pow2(3), 4u);
  EXPECT_EQ(core::next_pow2(511), 512u);
  EXPECT_EQ(core::next_pow2(512), 512u);
  EXPECT_EQ(core::next_pow2(513), 1024u);
}

TEST(Extents, SizeAndContains) {
  const Extents3D e{3, 4, 5};
  EXPECT_EQ(e.size(), 60u);
  EXPECT_FALSE(e.empty());
  EXPECT_TRUE(e.contains(2, 3, 4));
  EXPECT_FALSE(e.contains(3, 0, 0));
  EXPECT_FALSE(e.contains(0, 4, 0));
  EXPECT_FALSE(e.contains(0, 0, 5));
}

TEST(Extents, IsPow2) {
  EXPECT_TRUE((Extents3D{8, 16, 1}).is_pow2());
  EXPECT_FALSE((Extents3D{8, 12, 16}).is_pow2());
}

TEST(Extents, SizeDoesNotOverflow32Bits) {
  const Extents3D e{2048, 2048, 2048};
  EXPECT_EQ(e.size(), std::size_t{1} << 33);
}

TEST(Extents, ValidateRejectsHugeAxes) {
  EXPECT_THROW(core::validate_extents(Extents3D{(1u << 21) + 1, 1, 1}),
               std::invalid_argument);
  EXPECT_NO_THROW(core::validate_extents(Extents3D{1u << 21, 1, 1}));
}

TEST(Extents, PaddedPow2) {
  const auto p = core::padded_pow2(Extents3D{5, 9, 17});
  EXPECT_EQ(p, (Extents3D{8, 16, 32}));
}
