// Backend parity: the pthread pool and the OpenMP executor must be
// bit-identical. Both backends run the same per-item work with disjoint
// writes and no thread-id-dependent math, so item-to-thread assignment
// cannot leak into the output — this suite pins that contract for the
// bilateral filter and the raycaster across all four layouts.
//
// Labelled `parity` in ctest; skipped (not failed) in builds without an
// OpenMP runtime.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "sfcvis/core/volume.hpp"
#include "sfcvis/exec/execution_context.hpp"
#include "sfcvis/filters/bilateral.hpp"
#include "sfcvis/render/raycast.hpp"
#include "sfcvis/threads/omp_executor.hpp"
#include "sfcvis/verify/diff.hpp"

namespace {

using namespace sfcvis;
using core::AnyVolume;
using core::Extents3D;
using core::LayoutKind;

float field(std::uint32_t i, std::uint32_t j, std::uint32_t k) {
  // Deterministic, non-separable pattern with enough variation to exercise
  // the bilateral range kernel and the raycaster's transfer function.
  const float x = static_cast<float>(i) * 0.37f;
  const float y = static_cast<float>(j) * 0.23f;
  const float z = static_cast<float>(k) * 0.31f;
  return 0.5f + 0.25f * (x - y) * 0.1f + 0.2f * static_cast<float>((i + 2 * j + 3 * k) % 7) / 7.0f +
         0.05f * z * 0.1f;
}

exec::ExecutionContext make_ctx(exec::Backend backend, unsigned threads) {
  exec::ExecOptions opts;
  opts.threads = threads;
  opts.backend = backend;
  return exec::ExecutionContext(opts);
}

class BackendParity : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!threads::openmp_available()) {
      GTEST_SKIP() << "no OpenMP runtime in this build; parity has nothing to compare";
    }
  }
};

TEST_F(BackendParity, BilateralBitIdenticalAcrossBackendsAndLayouts) {
  const Extents3D e = Extents3D::cube(16);
  filters::BilateralParams params;
  params.radius = 2;
  for (const auto kind : core::kAllLayoutKinds) {
    AnyVolume src = core::make_volume(kind, e);
    src.fill_from(field);

    exec::ExecutionContext pool_ctx = make_ctx(exec::Backend::kPool, 3);
    exec::ExecutionContext omp_ctx = make_ctx(exec::Backend::kOpenMP, 3);
    ASSERT_EQ(omp_ctx.active_backend(), exec::Backend::kOpenMP);

    core::ArrayVolume via_pool(e);
    core::ArrayVolume via_omp(e);
    filters::bilateral_parallel(src, via_pool, params, pool_ctx);
    filters::bilateral_parallel(src, via_omp, params, omp_ctx);

    const auto report = verify::compare_grids(
        via_pool, via_omp, verify::Tolerance::bit_identical(),
        std::string("bilateral pool-vs-openmp [") + core::to_string(kind) + "]");
    EXPECT_TRUE(report.ok) << report.to_string();
  }
}

TEST_F(BackendParity, RaycastBitIdenticalAcrossBackendsAndLayouts) {
  const Extents3D e = Extents3D::cube(16);
  const auto camera = render::orbit_camera(/*viewpoint=*/1, /*of=*/8, 16, 16, 16);
  const auto tf = render::TransferFunction::flame();
  const render::RenderConfig config{48, 48, 24, 0.5f, 0.98f};
  for (const auto kind : core::kAllLayoutKinds) {
    AnyVolume volume = core::make_volume(kind, e);
    volume.fill_from(field);

    exec::ExecutionContext pool_ctx = make_ctx(exec::Backend::kPool, 3);
    exec::ExecutionContext omp_ctx = make_ctx(exec::Backend::kOpenMP, 3);

    const render::Image via_pool =
        render::raycast_parallel(volume, camera, tf, config, pool_ctx);
    const render::Image via_omp =
        render::raycast_parallel(volume, camera, tf, config, omp_ctx);

    const auto report = verify::compare_images(
        via_pool, via_omp, verify::Tolerance::bit_identical(),
        std::string("raycast pool-vs-openmp [") + core::to_string(kind) + "]");
    EXPECT_TRUE(report.ok) << report.to_string();
  }
}

TEST_F(BackendParity, DynamicScheduleParityOnGatherPath) {
  // The gather fast path uses per-worker scratch state
  // (parallel_static_state); pin it separately from the legacy kernel.
  const Extents3D e = Extents3D::cube(16);
  filters::BilateralParams params;
  params.radius = 3;
  params.use_gather = true;
  AnyVolume src = core::make_volume(LayoutKind::kZOrder, e);
  src.fill_from(field);

  exec::ExecutionContext pool_ctx = make_ctx(exec::Backend::kPool, 4);
  exec::ExecutionContext omp_ctx = make_ctx(exec::Backend::kOpenMP, 4);
  core::ArrayVolume via_pool(e);
  core::ArrayVolume via_omp(e);
  filters::bilateral_parallel(src, via_pool, params, pool_ctx);
  filters::bilateral_parallel(src, via_omp, params, omp_ctx);

  const auto report =
      verify::compare_grids(via_pool, via_omp, verify::Tolerance::bit_identical(),
                            "bilateral gather pool-vs-openmp [z-order]");
  EXPECT_TRUE(report.ok) << report.to_string();
}

}  // namespace
