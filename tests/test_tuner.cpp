// Tuned-layout pipeline: the registry JSON round-trip, the parser's error
// handling, ExecutionContext::resolve_layout's hit/fallback contract, and
// the evolutionary search's determinism and elitism guarantees on a tiny
// deterministic configuration.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include "sfcvis/core/gmorton.hpp"
#include "sfcvis/core/volume.hpp"
#include "sfcvis/exec/execution_context.hpp"
#include "sfcvis/exec/layout_registry.hpp"
#include "sfcvis/tuner/tuner.hpp"

namespace {

using namespace sfcvis;
using core::Extents3D;
using exec::LayoutRegistry;
using exec::TunedLayout;

TunedLayout sample_entry() {
  TunedLayout e;
  e.kernel = "bilateral";
  e.shape = "16x16x16";
  e.platform = "ivybridge";
  e.interleave = "zyxzyxzzyyxx";
  e.fitness = 1000.0;
  e.baseline_fitness = 1200.0;
  e.generations = 8;
  e.seed = 1;
  e.note = "unit test";
  return e;
}

/// RAII temp file under the build tree's scratch space.
struct TempFile {
  std::filesystem::path path;
  explicit TempFile(const char* name)
      : path(std::filesystem::temp_directory_path() /
             (std::string("sfcvis_tuner_test_") + name)) {}
  ~TempFile() {
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
};

TEST(ShapeKey, FormatsExtents) {
  EXPECT_EQ(exec::shape_key({256, 256, 256}), "256x256x256");
  EXPECT_EQ(exec::shape_key({20, 7, 5}), "20x7x5");
}

TEST(LayoutRegistry, JsonRoundTripPreservesEntries) {
  LayoutRegistry registry;
  registry.add(sample_entry());
  TunedLayout second = sample_entry();
  second.kernel = "raycast";
  second.platform = "any";
  second.interleave = "xxyyzzzyxzyx";
  second.note = "entry with a \"quoted\" note\nand a newline";
  registry.add(second);

  const LayoutRegistry parsed = LayoutRegistry::from_json(registry.to_json());
  ASSERT_EQ(parsed.size(), 2u);
  const TunedLayout* e = parsed.find("bilateral", "16x16x16");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->interleave, "zyxzyxzzyyxx");
  EXPECT_DOUBLE_EQ(e->fitness, 1000.0);
  EXPECT_DOUBLE_EQ(e->baseline_fitness, 1200.0);
  EXPECT_EQ(e->generations, 8u);
  EXPECT_EQ(e->seed, 1u);
  EXPECT_EQ(e->note, "unit test");
  const TunedLayout* r = parsed.find("raycast", "16x16x16");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->note, "entry with a \"quoted\" note\nand a newline");
}

TEST(LayoutRegistry, AddReplacesSameKey) {
  LayoutRegistry registry;
  registry.add(sample_entry());
  TunedLayout better = sample_entry();
  better.interleave = "xxyyzzzyxzyx";
  better.fitness = 900.0;
  registry.add(better);
  ASSERT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.find("bilateral", "16x16x16")->interleave, "xxyyzzzyxzyx");
}

TEST(LayoutRegistry, FindPrefersExactPlatformThenWildcard) {
  LayoutRegistry registry;
  TunedLayout generic = sample_entry();
  generic.platform = "any";
  generic.interleave = "zzzzyyyyxxxx";
  registry.add(generic);
  TunedLayout exact = sample_entry();
  exact.platform = "mic_knc";
  exact.interleave = "zyxzyxzzyyxx";
  registry.add(exact);

  EXPECT_EQ(registry.find("bilateral", "16x16x16", "mic_knc")->interleave,
            "zyxzyxzzyyxx");
  // Unknown platform falls back to the "any" wildcard entry.
  EXPECT_EQ(registry.find("bilateral", "16x16x16", "skylake")->interleave,
            "zzzzyyyyxxxx");
  // Empty platform accepts whatever is there.
  EXPECT_NE(registry.find("bilateral", "16x16x16"), nullptr);
  EXPECT_EQ(registry.find("bilateral", "32x32x32"), nullptr);
  EXPECT_EQ(registry.find("raycast", "16x16x16"), nullptr);
}

TEST(LayoutRegistry, FromJsonRejectsMalformedDocuments) {
  EXPECT_THROW((void)LayoutRegistry::from_json(""), std::runtime_error);
  EXPECT_THROW((void)LayoutRegistry::from_json("not json"), std::runtime_error);
  EXPECT_THROW((void)LayoutRegistry::from_json("{}"), std::runtime_error);
  EXPECT_THROW((void)LayoutRegistry::from_json(R"({"sfcvis_layout_registry":2,"entries":[]})"),
               std::runtime_error);
  // An entry missing a required key.
  EXPECT_THROW((void)LayoutRegistry::from_json(
                   R"({"sfcvis_layout_registry":1,"entries":[{"kernel":"bilateral"}]})"),
               std::runtime_error);
  // Trailing garbage after the document.
  EXPECT_THROW((void)LayoutRegistry::from_json(
                   R"({"sfcvis_layout_registry":1,"entries":[]} trailing)"),
               std::runtime_error);
}

TEST(LayoutRegistry, FromJsonSkipsUnknownKeys) {
  const LayoutRegistry parsed = LayoutRegistry::from_json(R"({
    "sfcvis_layout_registry": 1,
    "future_field": {"nested": [1, 2, {"deep": true}]},
    "entries": [{
      "kernel": "raycast", "shape": "8x8x8", "platform": "any",
      "interleave": "zyxzyxzyx", "someday": null, "extra": "ignored"
    }]
  })");
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed.find("raycast", "8x8x8")->interleave, "zyxzyxzyx");
}

TEST(LayoutRegistry, SaveLoadRoundTrip) {
  TempFile tmp("registry.json");
  LayoutRegistry registry;
  registry.add(sample_entry());
  registry.save(tmp.path.string());
  const LayoutRegistry loaded = LayoutRegistry::load(tmp.path.string());
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded.find("bilateral", "16x16x16")->interleave, "zyxzyxzzyyxx");
  EXPECT_THROW((void)LayoutRegistry::load("/nonexistent/sfcvis/registry.json"),
               std::runtime_error);
}

TEST(ExecutionContext, ResolveLayoutReturnsTunedEntry) {
  TempFile tmp("resolve.json");
  LayoutRegistry registry;
  registry.add(sample_entry());
  registry.save(tmp.path.string());

  exec::ExecOptions opts;
  opts.threads = 1;
  opts.layout_registry = tmp.path.string();
  exec::ExecutionContext ctx(opts);
  EXPECT_NE(ctx.layout_registry_note().find("loaded 1 tuned layout"), std::string::npos)
      << ctx.layout_registry_note();

  const exec::ResolvedLayout hit = ctx.resolve_layout("bilateral", {16, 16, 16});
  EXPECT_TRUE(hit.tuned);
  EXPECT_EQ(hit.kind, core::LayoutKind::kGMorton);
  EXPECT_EQ(hit.interleave, "zyxzyxzzyyxx");
  EXPECT_NE(hit.note.find("tuned layout for"), std::string::npos) << hit.note;

  // The resolved answer must build a working volume of the tuned layout.
  core::AnyVolume v = ctx.make_volume(hit, {16, 16, 16});
  EXPECT_EQ(v.kind(), core::LayoutKind::kGMorton);
  EXPECT_EQ(v.as<core::GeneralizedMortonLayout>().layout().pattern().str(),
            "zyxzyxzzyyxx");

  // A miss (different shape) falls back to canonical Z and says why.
  const exec::ResolvedLayout miss = ctx.resolve_layout("bilateral", {32, 32, 32});
  EXPECT_FALSE(miss.tuned);
  EXPECT_EQ(miss.kind, core::LayoutKind::kZOrder);
  EXPECT_TRUE(miss.interleave.empty());
  EXPECT_NE(miss.note.find("no tuned entry"), std::string::npos) << miss.note;
}

TEST(ExecutionContext, ResolveLayoutReportsMissingRegistry) {
  exec::ExecOptions opts;
  opts.threads = 1;
  opts.layout_registry = "/nonexistent/sfcvis/registry.json";
  exec::ExecutionContext ctx(opts);
  const exec::ResolvedLayout r = ctx.resolve_layout("bilateral", {16, 16, 16});
  EXPECT_FALSE(r.tuned);
  EXPECT_EQ(r.kind, core::LayoutKind::kZOrder);
  EXPECT_NE(ctx.layout_registry_note().find("unavailable"), std::string::npos)
      << ctx.layout_registry_note();
}

// --------------------------------------------------------------------------
// Search sanity on a deliberately tiny configuration: one pencil batch of
// bilateral on an 8^3 volume, 2 generations. Slow enough to mean something,
// fast enough for ctest.
// --------------------------------------------------------------------------

tuner::TunerConfig tiny_config() {
  tuner::TunerConfig config;
  config.kernel = "bilateral";
  config.extents = Extents3D::cube(8);
  config.trace_items = 16;
  config.population = 6;
  config.survivors = 2;
  config.generations = 2;
  config.seed = 3;
  return config;
}

TEST(Tuner, SearchIsDeterministicAndElitist) {
  const tuner::TunerResult a = tuner::search(tiny_config());
  const tuner::TunerResult b = tuner::search(tiny_config());
  EXPECT_EQ(a.best.pattern, b.best.pattern);
  EXPECT_DOUBLE_EQ(a.best.fitness, b.best.fitness);
  EXPECT_EQ(a.evaluations, b.evaluations);

  // Elitist selection: the winner can never be worse than any canonical
  // seed (they are all in the initial population).
  EXPECT_LE(a.best.fitness, a.canonical_z.fitness);
  EXPECT_LE(a.best.fitness, a.best_canonical.fitness);
  EXPECT_LE(a.best_canonical.fitness, a.canonical_z.fitness);
  ASSERT_EQ(a.generation_best.size(), 2u);
  // Per-generation bests are monotonically non-increasing.
  EXPECT_LE(a.generation_best[1].fitness, a.generation_best[0].fitness);

  // The winner is a valid pattern for the shape (throws otherwise).
  EXPECT_NO_THROW((void)core::InterleavePattern(a.best.pattern, tiny_config().extents));
}

TEST(Tuner, EvaluatorMemoizesAndRejectsUnknownKernel) {
  tuner::TunerConfig config = tiny_config();
  tuner::FitnessEvaluator fitness(config);
  const std::string canon = core::InterleavePattern::canonical(config.extents).str();
  const tuner::Candidate& first = fitness.evaluate(canon);
  const double cycles = first.fitness;
  EXPECT_GT(cycles, 0.0);
  EXPECT_EQ(fitness.evaluations(), 1u);
  const tuner::Candidate& again = fitness.evaluate(canon);
  EXPECT_DOUBLE_EQ(again.fitness, cycles);
  EXPECT_EQ(fitness.evaluations(), 1u);  // memoized, not re-traced

  config.kernel = "sobel";
  EXPECT_THROW((void)tuner::FitnessEvaluator(config), std::invalid_argument);
}

TEST(Tuner, SampledMrcFitnessIsDeterministicAndElitist) {
  // The SHARDS-sampled miss-ratio fitness: same search contract as memsim
  // (deterministic, elitist), different — much cheaper — signal. 16^3 so
  // the hash filter keeps enough lines for a meaningful miss count.
  tuner::TunerConfig config = tiny_config();
  config.extents = core::Extents3D::cube(16);
  config.fitness = "sampled-mrc";
  const tuner::TunerResult a = tuner::search(config);
  const tuner::TunerResult b = tuner::search(config);
  EXPECT_EQ(a.best.pattern, b.best.pattern);
  EXPECT_DOUBLE_EQ(a.best.fitness, b.best.fitness);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_GT(a.best.fitness, 0.0);  // estimated misses, never zero here
  EXPECT_LE(a.best.fitness, a.canonical_z.fitness);
  EXPECT_LE(a.best.fitness, a.best_canonical.fitness);
  // The note records which signal produced the entry.
  const TunedLayout entry = tuner::to_registry_entry(config, a);
  EXPECT_NE(entry.note.find("sampled-mrc"), std::string::npos);
}

TEST(Tuner, RejectsUnknownFitnessSignal) {
  tuner::TunerConfig config = tiny_config();
  config.fitness = "wallclock";
  EXPECT_THROW((void)tuner::search(config), std::invalid_argument);
}

TEST(Tuner, RegistryEntryMatchesSearchResult) {
  const tuner::TunerConfig config = tiny_config();
  const tuner::TunerResult result = tuner::search(config);
  const TunedLayout entry = tuner::to_registry_entry(config, result);
  EXPECT_EQ(entry.kernel, "bilateral");
  EXPECT_EQ(entry.shape, "8x8x8");
  EXPECT_EQ(entry.platform, "ivybridge");
  EXPECT_EQ(entry.interleave, result.best.pattern);
  EXPECT_DOUBLE_EQ(entry.fitness, result.best.fitness);
  EXPECT_DOUBLE_EQ(entry.baseline_fitness, result.canonical_z.fitness);
  // The round trip the CLI performs: entry -> JSON -> ExecutionContext.
  LayoutRegistry registry;
  registry.add(entry);
  const LayoutRegistry parsed = LayoutRegistry::from_json(registry.to_json());
  ASSERT_NE(parsed.find("bilateral", "8x8x8"), nullptr);
  EXPECT_EQ(parsed.find("bilateral", "8x8x8")->interleave, result.best.pattern);
}

}  // namespace
