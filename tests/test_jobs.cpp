// Job-system lifecycle and parity suite (exec::KernelJob / JobGraph /
// KernelRegistry).
//
// Pins the contracts the migration to schedulable jobs introduced:
//  * queued job dispatch is bit-identical to the synchronous driver calls
//    (every kernel family, every volume backend incl. out-of-core);
//  * pool and OpenMP backends produce identical per-job records;
//  * cancellation (pre-start and mid-run), the REJECTED double-submit
//    policy, zero-tile jobs, priority lanes, deadline accounting;
//  * queued back-to-back macrocell renders share one StructureCache entry
//    (the second job's record attributes a hit);
//  * the serial macrocell build the traced replay uses matches the
//    context-parallel build the native render caches (satellite audit of
//    traced-vs-untraced drift).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sfcvis/core/brick_file.hpp"
#include "sfcvis/core/volume.hpp"
#include "sfcvis/memsim/hierarchy.hpp"
#include "sfcvis/memsim/platforms.hpp"
#include "sfcvis/exec/execution_context.hpp"
#include "sfcvis/exec/kernel_registry.hpp"
#include "sfcvis/filters/bilateral.hpp"
#include "sfcvis/filters/gaussian.hpp"
#include "sfcvis/filters/gradient.hpp"
#include "sfcvis/filters/median.hpp"
#include "sfcvis/render/macrocell.hpp"
#include "sfcvis/render/raycast.hpp"
#include "sfcvis/threads/omp_executor.hpp"
#include "sfcvis/verify/diff.hpp"

// Uninstrumented libgomp barriers are invisible to TSan, so OpenMP-backend
// runs report false races (same pre-existing situation as the BackendParity
// suite); the OpenMP leg of this suite skips under TSan.
#if defined(__SANITIZE_THREAD__)
#define SFCVIS_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SFCVIS_TEST_TSAN 1
#endif
#endif

namespace {

using namespace sfcvis;
using core::AnyVolume;
using core::ArrayVolume;
using core::Extents3D;
using core::LayoutKind;
using exec::ExecutionContext;
using exec::JobDispatch;
using exec::JobState;
using exec::KernelJob;

float field(std::uint32_t i, std::uint32_t j, std::uint32_t k) {
  return 0.5f + 0.2f * static_cast<float>((i + 2 * j + 3 * k) % 7) / 7.0f +
         0.01f * static_cast<float>(i) - 0.005f * static_cast<float>(j) +
         0.002f * static_cast<float>(k);
}

ExecutionContext make_ctx(unsigned threads, exec::Backend backend = exec::Backend::kPool) {
  exec::ExecOptions opts;
  opts.threads = threads;
  opts.backend = backend;
  opts.layout_registry.clear();
  return ExecutionContext(opts);
}

/// A no-op test kernel in the registry (registered once per process;
/// repeat registration attempts are the duplicate-rejection test).
void ensure_test_kernel() {
  if (exec::KernelRegistry::instance().find("test.noop") == nullptr) {
    exec::KernelRegistry::instance().register_kernel(
        {"test.noop", "items", JobDispatch::kSerial, false, ""});
  }
}

KernelJob noop_job(JobDispatch dispatch, std::size_t tiles, const void* output = nullptr) {
  ensure_test_kernel();
  KernelJob job;
  job.kernel = "test.noop";
  job.dispatch = dispatch;
  job.tiles = tiles;
  job.output = output;
  job.tile = [](void*, std::size_t, unsigned) {};
  return job;
}

// -----------------------------------------------------------------------------
// Registry

TEST(KernelRegistry, BuiltinKernelsAreSeeded) {
  auto& reg = exec::KernelRegistry::instance();
  for (const char* name : {"bilateral", "bilateral.zsweep", "bilateral.traced",
                           "bilateral.zsweep.traced", "bilateral2d", "gaussian", "median",
                           "gradient", "raycast", "raycast.traced"}) {
    const exec::KernelInfo* info = reg.find(name);
    ASSERT_NE(info, nullptr) << name;
    EXPECT_EQ(info->name, name);
    EXPECT_FALSE(info->decomposer.empty()) << name;
  }
  EXPECT_EQ(reg.find("raycast")->dispatch, JobDispatch::kDynamic);
  EXPECT_TRUE(reg.find("raycast")->uses_structure_cache);
  EXPECT_EQ(reg.find("raycast")->structures, "macrocell");
  EXPECT_EQ(reg.find("bilateral.traced")->dispatch, JobDispatch::kSerial);
  EXPECT_EQ(reg.find("no.such.kernel"), nullptr);
}

TEST(KernelRegistry, DuplicateAndEmptyRegistrationThrow) {
  ensure_test_kernel();
  EXPECT_THROW(exec::KernelRegistry::instance().register_kernel(
                   {"test.noop", "items", JobDispatch::kSerial, false, ""}),
               std::invalid_argument);
  EXPECT_THROW(exec::KernelRegistry::instance().register_kernel(
                   {"", "items", JobDispatch::kSerial, false, ""}),
               std::invalid_argument);
}

TEST(KernelRegistry, NamesEnumeratesEveryEntry) {
  ensure_test_kernel();
  const auto names = exec::KernelRegistry::instance().names();
  EXPECT_GE(names.size(), 11u);  // 10 builtins + test.noop
  std::size_t found = 0;
  for (const auto& n : names) {
    if (n == "gradient" || n == "test.noop") {
      ++found;
    }
  }
  EXPECT_EQ(found, 2u);
}

// -----------------------------------------------------------------------------
// Lifecycle edges

TEST(JobGraph, UnregisteredKernelRejectedAtSubmit) {
  auto ctx = make_ctx(2);
  KernelJob job;
  job.kernel = "definitely.not.registered";
  job.tiles = 0;
  EXPECT_THROW((void)ctx.jobs().submit(std::move(job)), std::invalid_argument);
}

TEST(JobGraph, TilesWithoutBodyRejectedAtSubmit) {
  auto ctx = make_ctx(2);
  ensure_test_kernel();
  KernelJob job;
  job.kernel = "test.noop";
  job.tiles = 4;  // no tile body
  EXPECT_THROW((void)ctx.jobs().submit(std::move(job)), std::invalid_argument);
}

TEST(JobGraph, ZeroTileJobCompletesAsDone) {
  auto ctx = make_ctx(2);
  const auto id = ctx.jobs().submit(noop_job(JobDispatch::kStatic, 0));
  ctx.jobs().run_all();
  const auto record = ctx.jobs().find_record(id);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->state, JobState::kDone);
  EXPECT_EQ(record->tiles, 0u);
  EXPECT_EQ(record->tiles_run, 0u);
}

TEST(JobGraph, ZeroTileRegionNeverInvokesTheBody) {
  // Zero-extent volumes are rejected by Extents3D itself, so the job-level
  // shape of an empty region is a decomposer that produced zero tiles: the
  // job must run as a recorded no-op without touching its tile body or
  // per-worker state factory.
  auto ctx = make_ctx(2);
  ensure_test_kernel();
  KernelJob job;
  job.kernel = "test.noop";
  job.dispatch = JobDispatch::kStatic;
  job.tiles = 0;
  int state_makes = 0;
  int runs = 0;
  job.make_state = [&](unsigned) -> std::shared_ptr<void> {
    ++state_makes;
    return nullptr;
  };
  job.tile = [&](void*, std::size_t, unsigned) { ++runs; };
  const auto id = ctx.jobs().submit(std::move(job));
  ctx.jobs().run_all();
  const auto record = ctx.jobs().find_record(id);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->state, JobState::kDone);
  EXPECT_EQ(record->tiles_run, 0u);
  EXPECT_EQ(runs, 0);
  EXPECT_EQ(state_makes, 0);
}

TEST(JobGraph, CancelBeforeStartRunsNothing) {
  auto ctx = make_ctx(2);
  ensure_test_kernel();
  int runs = 0;
  KernelJob job;
  job.kernel = "test.noop";
  job.dispatch = JobDispatch::kSerial;
  job.tiles = 8;
  job.tile = [&](void*, std::size_t, unsigned) { ++runs; };
  const auto cancel = job.cancel;
  const auto id = ctx.jobs().submit(std::move(job));
  cancel.request_cancel();
  ctx.jobs().run_all();
  const auto record = ctx.jobs().find_record(id);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->state, JobState::kCancelled);
  EXPECT_EQ(record->tiles_run, 0u);
  EXPECT_EQ(runs, 0);
}

TEST(JobGraph, CancelMidRunStopsBetweenTiles) {
  auto ctx = make_ctx(1);
  ensure_test_kernel();
  KernelJob job;
  job.kernel = "test.noop";
  job.dispatch = JobDispatch::kSerial;
  job.tiles = 8;
  const auto cancel = job.cancel;
  int runs = 0;
  job.tile = [&](void*, std::size_t t, unsigned) {
    ++runs;
    if (t == 2) {
      cancel.request_cancel();
    }
  };
  const auto id = ctx.jobs().submit(std::move(job));
  ctx.jobs().run_all();
  const auto record = ctx.jobs().find_record(id);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->state, JobState::kCancelled);
  EXPECT_EQ(record->tiles_run, 3u);  // tiles 0..2 ran; the cancel is sticky
  EXPECT_EQ(runs, 3);
}

TEST(JobGraph, DoubleSubmitOfSameOutputIsRejected) {
  // Pinned policy: rejected, not serialized (see job_graph.hpp).
  auto ctx = make_ctx(2);
  ArrayVolume dst(Extents3D::cube(4));
  const auto id = ctx.jobs().submit(noop_job(JobDispatch::kStatic, 1, dst.data()));
  EXPECT_THROW((void)ctx.jobs().submit(noop_job(JobDispatch::kStatic, 1, dst.data())),
               std::invalid_argument);
  // A different output queues fine alongside.
  ArrayVolume other(Extents3D::cube(4));
  (void)ctx.jobs().submit(noop_job(JobDispatch::kStatic, 1, other.data()));
  ctx.jobs().run_all();
  // Once drained, the same output is accepted again.
  (void)ctx.jobs().submit(noop_job(JobDispatch::kStatic, 1, dst.data()));
  ctx.jobs().run_all();
  EXPECT_EQ(ctx.jobs().pending(), 0u);
  (void)id;
}

TEST(JobGraph, HighPriorityLaneDrainsFirst) {
  auto ctx = make_ctx(1);
  ensure_test_kernel();
  std::vector<int> order;
  auto make = [&](int tag, exec::JobPriority priority) {
    KernelJob job = noop_job(JobDispatch::kSerial, 1);
    job.priority = priority;
    job.tile = [&order, tag](void*, std::size_t, unsigned) { order.push_back(tag); };
    return job;
  };
  (void)ctx.jobs().submit(make(0, exec::JobPriority::kNormal));
  (void)ctx.jobs().submit(make(1, exec::JobPriority::kNormal));
  (void)ctx.jobs().submit(make(2, exec::JobPriority::kHigh));
  (void)ctx.jobs().submit(make(3, exec::JobPriority::kHigh));
  ctx.jobs().run_all();
  EXPECT_EQ(order, (std::vector<int>{2, 3, 0, 1}));  // high FIFO, then normal FIFO
}

TEST(JobGraph, RunDrainsScheduledOrderUpToRequestedJob) {
  auto ctx = make_ctx(1);
  ensure_test_kernel();
  std::vector<int> order;
  auto make = [&](int tag) {
    KernelJob job = noop_job(JobDispatch::kSerial, 1);
    job.tile = [&order, tag](void*, std::size_t, unsigned) { order.push_back(tag); };
    return job;
  };
  (void)ctx.jobs().submit(make(0));
  const auto second = ctx.jobs().submit(make(1));
  (void)ctx.jobs().submit(make(2));
  ctx.jobs().run(second);
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_EQ(ctx.jobs().pending(), 1u);
  ctx.jobs().run(second);  // already ran: no-op
  EXPECT_EQ(ctx.jobs().pending(), 1u);
  ctx.jobs().run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(JobGraph, DeadlineAccountingFlagsMissesOnly) {
  auto ctx = make_ctx(1);
  ensure_test_kernel();
  KernelJob slow = noop_job(JobDispatch::kSerial, 1);
  slow.deadline_ns = 1;  // 1 ns: certain miss
  slow.tile = [](void*, std::size_t, unsigned) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  };
  const auto slow_id = ctx.jobs().submit(std::move(slow));
  KernelJob fine = noop_job(JobDispatch::kSerial, 1);
  fine.deadline_ns = std::uint64_t{60} * 1000 * 1000 * 1000;  // one minute
  const auto fine_id = ctx.jobs().submit(std::move(fine));
  const auto free_id = ctx.jobs().submit(noop_job(JobDispatch::kSerial, 1));  // no deadline
  ctx.jobs().run_all();
  EXPECT_TRUE(ctx.jobs().find_record(slow_id)->deadline_missed);
  EXPECT_FALSE(ctx.jobs().find_record(fine_id)->deadline_missed);
  EXPECT_FALSE(ctx.jobs().find_record(free_id)->deadline_missed);
  // Deadlines are accounting only: the job still ran to completion.
  EXPECT_EQ(ctx.jobs().find_record(slow_id)->state, JobState::kDone);
}

// -----------------------------------------------------------------------------
// Queued-vs-immediate bit-identity, all volume backends

TEST(JobParity, QueuedJobsBitIdenticalToDriverCallsAllLayouts) {
  const Extents3D e = Extents3D::cube(12);
  filters::BilateralParams params;
  params.radius = 1;
  for (const LayoutKind kind : core::kAllLayoutKinds) {
    AnyVolume src = core::make_volume(kind, e);
    src.fill_from(field);
    auto ctx_direct = make_ctx(3);
    auto ctx_queued = make_ctx(3);
    // Direct: the synchronous driver wrappers (submit + run, one at a time).
    ArrayVolume direct_grad(e), direct_med(e), direct_gauss(e), direct_bilat(e),
        direct_sweep(e);
    filters::gradient_magnitude(src, direct_grad, ctx_direct);
    filters::median_filter(src, direct_med, 1, ctx_direct);
    filters::gaussian_convolve(src, direct_gauss, 1, 1.0f, ctx_direct);
    filters::bilateral_parallel(src, direct_bilat, params, ctx_direct);
    filters::bilateral_zsweep(src, direct_sweep, params, ctx_direct);
    // Queued: all five jobs enqueued up front, then drained in one pass.
    ArrayVolume q_grad(e), q_med(e), q_gauss(e), q_bilat(e), q_sweep(e);
    auto& graph = ctx_queued.jobs();
    (void)graph.submit(filters::gradient_job(src, q_grad));
    (void)graph.submit(filters::median_job(src, q_med, 1));
    (void)graph.submit(filters::gaussian_job(src, q_gauss, 1, 1.0f));
    (void)graph.submit(filters::bilateral_job(src, q_bilat, params));
    (void)graph.submit(filters::bilateral_zsweep_job(src, q_sweep, params, ctx_queued));
    graph.run_all();
    const std::string tag = std::string(core::to_string(kind));
    const std::vector<std::tuple<const ArrayVolume*, const ArrayVolume*, const char*>>
        pairs = {{&direct_grad, &q_grad, "gradient"},
                 {&direct_med, &q_med, "median"},
                 {&direct_gauss, &q_gauss, "gaussian"},
                 {&direct_bilat, &q_bilat, "bilateral"},
                 {&direct_sweep, &q_sweep, "bilateral.zsweep"}};
    for (const auto& [expected, actual, name] : pairs) {
      const auto report =
          verify::compare_grids(*expected, *actual, verify::Tolerance::bit_identical(),
                                name + (" [" + tag + "]"));
      EXPECT_TRUE(report.ok) << report.to_string();
    }
    const auto records = graph.records();
    ASSERT_EQ(records.size(), 5u) << tag;
    for (const auto& r : records) {
      EXPECT_EQ(r.state, JobState::kDone) << tag << " " << r.kernel;
      EXPECT_EQ(r.tiles_run, r.tiles) << tag << " " << r.kernel;
    }
  }
}

TEST(JobParity, QueuedRaycastBitIdenticalToDriverCall) {
  const Extents3D e = Extents3D::cube(16);
  AnyVolume vol = core::make_volume(LayoutKind::kZOrder, e);
  vol.fill_from(field);
  const render::Camera cam({24, 20, 28}, {8, 8, 8}, {0, 1, 0}, 40.0f,
                           render::Projection::kPerspective);
  const auto tf = render::TransferFunction::flame();
  render::RenderConfig config;
  config.image_width = 48;
  config.image_height = 48;
  config.tile_size = 16;
  for (const bool macrocells : {false, true}) {
    config.use_macrocells = macrocells;
    auto ctx_direct = make_ctx(3);
    auto ctx_queued = make_ctx(3);
    const render::Image direct =
        render::raycast_parallel(vol, cam, tf, config, ctx_direct);
    render::Image queued(config.image_width, config.image_height);
    auto& graph = ctx_queued.jobs();
    (void)graph.submit(render::raycast_job(vol, cam, tf, config, queued));
    graph.run_all();
    const auto report = verify::compare_images(
        direct, queued, verify::Tolerance::bit_identical(),
        macrocells ? "raycast queued [macrocell]" : "raycast queued [dense]");
    EXPECT_TRUE(report.ok) << report.to_string();
  }
}

TEST(JobParity, OutOfCoreBrickedBackendMatchesInMemory) {
  const Extents3D e{16, 12, 8};
  AnyVolume packed_src = core::make_volume(LayoutKind::kZOrder, e);
  packed_src.fill_from(field);
  const auto path = (std::filesystem::temp_directory_path() / "sfcvis_jobs_bricked.sfcbrk")
                        .string();
  core::BrickPackOptions popts;
  popts.brick_edge = 8;
  (void)core::pack_brick_file(path, packed_src, popts);
  auto ctx = make_ctx(2);
  const AnyVolume bricked = ctx.open_bricked(path, 0);
  ArrayVolume from_bricked(e);
  filters::gradient_magnitude(bricked, from_bricked, ctx);
  ArrayVolume reference(e);
  filters::gradient_magnitude(packed_src, reference, ctx);
  const auto report =
      verify::compare_grids(reference, from_bricked, verify::Tolerance::bit_identical(),
                            "gradient [bricked vs in-memory]");
  EXPECT_TRUE(report.ok) << report.to_string();
  std::filesystem::remove(path);
}

// -----------------------------------------------------------------------------
// Pool-vs-OpenMP per-job attribution parity

TEST(JobParity, PoolAndOpenMpRecordsAgree) {
  if (!threads::openmp_available()) {
    GTEST_SKIP() << "no OpenMP runtime in this build";
  }
#ifdef SFCVIS_TEST_TSAN
  GTEST_SKIP() << "libgomp is uninstrumented under TSan (known false positives)";
#endif
  const Extents3D e = Extents3D::cube(12);
  AnyVolume src = core::make_volume(LayoutKind::kHilbert, e);
  src.fill_from(field);
  filters::BilateralParams params;
  params.radius = 1;
  std::vector<exec::JobRecord> per_backend[2];
  ArrayVolume outputs[2] = {ArrayVolume(e), ArrayVolume(e)};
  const exec::Backend backends[2] = {exec::Backend::kPool, exec::Backend::kOpenMP};
  for (int b = 0; b < 2; ++b) {
    auto ctx = make_ctx(3, backends[b]);
    ArrayVolume grad(e);
    filters::gradient_magnitude(src, grad, ctx);
    filters::bilateral_parallel(src, outputs[b], params, ctx);
    per_backend[b] = ctx.jobs().records();
  }
  ASSERT_EQ(per_backend[0].size(), per_backend[1].size());
  for (std::size_t n = 0; n < per_backend[0].size(); ++n) {
    const auto& pool_r = per_backend[0][n];
    const auto& omp_r = per_backend[1][n];
    EXPECT_EQ(pool_r.kernel, omp_r.kernel);
    EXPECT_EQ(pool_r.tiles, omp_r.tiles);
    EXPECT_EQ(pool_r.tiles_run, omp_r.tiles_run);
    EXPECT_EQ(pool_r.state, omp_r.state);
    EXPECT_EQ(pool_r.structure_cache_hits, omp_r.structure_cache_hits);
    EXPECT_EQ(pool_r.structure_cache_misses, omp_r.structure_cache_misses);
  }
  const auto report = verify::compare_grids(outputs[0], outputs[1],
                                            verify::Tolerance::bit_identical(),
                                            "bilateral [pool vs openmp job records]");
  EXPECT_TRUE(report.ok) << report.to_string();
}

// -----------------------------------------------------------------------------
// StructureCache sharing across queued jobs

TEST(JobCache, QueuedRaycastsShareOneMacrocellGrid) {
  const Extents3D e = Extents3D::cube(16);
  AnyVolume vol = core::make_volume(LayoutKind::kZOrder, e);
  vol.fill_from(field);
  const render::Camera cam({24, 20, 28}, {8, 8, 8}, {0, 1, 0}, 40.0f,
                           render::Projection::kPerspective);
  const auto tf = render::TransferFunction::flame();
  render::RenderConfig config;
  config.image_width = 32;
  config.image_height = 32;
  config.use_macrocells = true;
  auto ctx = make_ctx(2);
  render::Image first(config.image_width, config.image_height);
  render::Image second(config.image_width, config.image_height);
  auto& graph = ctx.jobs();
  const auto first_id = graph.submit(render::raycast_job(vol, cam, tf, config, first));
  const auto second_id = graph.submit(render::raycast_job(vol, cam, tf, config, second));
  graph.run_all();
  const auto r1 = graph.find_record(first_id);
  const auto r2 = graph.find_record(second_id);
  ASSERT_TRUE(r1.has_value());
  ASSERT_TRUE(r2.has_value());
  // The first job's prep misses and builds; the second job's prep hits the
  // cached grid — per-job attribution makes the reuse visible.
  EXPECT_EQ(r1->structure_cache_misses, 1u);
  EXPECT_EQ(r1->structure_cache_hits, 0u);
  EXPECT_EQ(r2->structure_cache_misses, 0u);
  EXPECT_GE(r2->structure_cache_hits, 1u);
  const auto report = verify::compare_images(first, second,
                                             verify::Tolerance::bit_identical(),
                                             "back-to-back queued raycasts");
  EXPECT_TRUE(report.ok) << report.to_string();
}

// -----------------------------------------------------------------------------
// Traced-driver drift audit pins (satellite 6)

TEST(TracedDrift, SerialMacrocellBuildMatchesContextParallelBuild) {
  // raycast_traced builds its grid serially (no context in replay scope);
  // raycast_parallel caches a context-parallel build. Both paths must
  // produce identical grids or traced and native skipping diverge.
  const Extents3D e{20, 13, 9};
  AnyVolume vol = core::make_volume(LayoutKind::kZOrder, e);
  vol.fill_from(field);
  auto ctx = make_ctx(3);
  const auto serial = render::MacrocellGrid::build(vol, 8);
  const auto parallel = render::MacrocellGrid::build(vol, 8, &ctx);
  ASSERT_EQ(serial.cell_extents().size(), parallel.cell_extents().size());
  const auto ce = serial.cell_extents();
  for (std::uint32_t ck = 0; ck < ce.nz; ++ck) {
    for (std::uint32_t cj = 0; cj < ce.ny; ++cj) {
      for (std::uint32_t ci = 0; ci < ce.nx; ++ci) {
        const auto a = serial.range(ci, cj, ck);
        const auto b = parallel.range(ci, cj, ck);
        ASSERT_EQ(a.min, b.min) << ci << "," << cj << "," << ck;
        ASSERT_EQ(a.max, b.max) << ci << "," << cj << "," << ck;
      }
    }
  }
}

TEST(TracedDrift, ZsweepTracedChunkingMatchesUntwistedFormula) {
  // The traced sweep derives its chunk count from (threads,
  // chunks_per_thread) exactly like ExecutionContext::curve_chunks — this
  // pins the constants so the replayed decomposition cannot drift from
  // the native one.
  const Extents3D e{24, 17, 11};
  const core::ZOrderTables tables(e);
  const std::size_t cap = tables.capacity();
  for (const unsigned threads : {1u, 3u, 8u}) {
    for (const std::size_t cpt : {std::size_t{1}, std::size_t{8}}) {
      exec::ExecOptions opts;
      opts.threads = threads;
      opts.chunks_per_thread = cpt;
      opts.layout_registry.clear();
      ExecutionContext ctx(opts);
      const std::size_t native = ctx.curve_chunks(e.size(), cap);
      const std::size_t traced = std::max<std::size_t>(
          1, threads * cpt * cap / std::max<std::size_t>(1, e.size()));
      EXPECT_EQ(native, traced) << threads << "x" << cpt;
    }
  }
}

TEST(TracedDrift, TracedReplayMatchesNativeOutputs) {
  // bilateral_traced ignores use_gather / LUT modes by design (it measures
  // the per-voxel access stream), but its *output* must still match the
  // native driver in exact mode.
  const Extents3D e = Extents3D::cube(10);
  AnyVolume src = core::make_volume(LayoutKind::kZOrder, e);
  src.fill_from(field);
  filters::BilateralParams params;
  params.radius = 1;
  params.use_gather = false;
  params.fast_exp = false;
  params.use_range_lut = false;
  auto ctx = make_ctx(3);
  ArrayVolume native(e);
  filters::bilateral_parallel(src, native, params, ctx);
  memsim::Hierarchy hierarchy(memsim::tiny_test_platform(), 2);
  ArrayVolume traced(e);
  filters::bilateral_traced(src, traced, params, hierarchy);
  const auto report = verify::compare_grids(native, traced,
                                            verify::Tolerance::bit_identical(),
                                            "bilateral traced vs native [exact mode]");
  EXPECT_TRUE(report.ok) << report.to_string();
}

}  // namespace
