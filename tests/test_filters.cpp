// Tests for the 3D bilateral filter and the Gaussian baseline.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "sfcvis/exec/execution_context.hpp"
#include "sfcvis/data/phantom.hpp"
#include "sfcvis/filters/bilateral.hpp"
#include "sfcvis/filters/gaussian.hpp"
#include "sfcvis/memsim/platforms.hpp"

namespace core = sfcvis::core;
namespace exec = sfcvis::exec;
namespace data = sfcvis::data;
namespace filters = sfcvis::filters;
namespace memsim = sfcvis::memsim;
namespace threads = sfcvis::threads;

using core::ArrayOrderLayout;
using core::Extents3D;
using core::Grid3D;
using core::HilbertLayout;
using core::TiledLayout;
using core::ZOrderLayout;
using filters::BilateralParams;
using filters::LoopOrder;
using filters::PencilAxis;

namespace {

constexpr std::uint32_t g_step = 8;

/// Noisy step volume: two flat regions with a sharp boundary plus hashed
/// perturbation — the canonical bilateral-filter stimulus.
template <class GridT>
void fill_noisy_step(GridT& g) {
  g.fill_from([](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    const float base = i < g_step ? 0.2f : 0.8f;
    const std::uint32_t h = (i * 73856093u) ^ (j * 19349663u) ^ (k * 83492791u);
    const float noise = (static_cast<float>(h % 1000) / 1000.0f - 0.5f) * 0.06f;
    return base + noise;
  });
}

void expect_grids_near(const Grid3D<float, ArrayOrderLayout>& a,
                       const Grid3D<float, ArrayOrderLayout>& b, float tol) {
  a.for_each_index([&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    ASSERT_NEAR(a.at(i, j, k), b.at(i, j, k), tol) << i << "," << j << "," << k;
  });
}

}  // namespace

// ---------------------------------------------------------------------------
// Weights
// ---------------------------------------------------------------------------

TEST(BilateralWeights, CenterIsOneAndSymmetric) {
  const filters::BilateralWeights w(2, 1.5f);
  EXPECT_FLOAT_EQ(w.spatial(0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(w.spatial(1, 0, 0), w.spatial(-1, 0, 0));
  EXPECT_FLOAT_EQ(w.spatial(1, 0, 0), w.spatial(0, 1, 0));
  EXPECT_FLOAT_EQ(w.spatial(1, 0, 0), w.spatial(0, 0, 1));
  EXPECT_FLOAT_EQ(w.spatial(2, 1, -1), w.spatial(-2, -1, 1));
}

TEST(BilateralWeights, DecaysWithDistance) {
  const filters::BilateralWeights w(3, 1.0f);
  EXPECT_GT(w.spatial(0, 0, 0), w.spatial(1, 0, 0));
  EXPECT_GT(w.spatial(1, 0, 0), w.spatial(2, 0, 0));
  EXPECT_GT(w.spatial(2, 0, 0), w.spatial(3, 0, 0));
  EXPECT_GT(w.spatial(1, 1, 0), w.spatial(1, 1, 1));
}

TEST(BilateralWeights, RangeTermMatchesGaussian) {
  const float inv2sr2 = 1.0f / (2.0f * 0.1f * 0.1f);
  EXPECT_FLOAT_EQ(filters::BilateralWeights::range(0.0f, inv2sr2), 1.0f);
  EXPECT_NEAR(filters::BilateralWeights::range(0.1f, inv2sr2), std::exp(-0.5f), 1e-6f);
  EXPECT_LT(filters::BilateralWeights::range(0.5f, inv2sr2), 1e-5f);
}

// ---------------------------------------------------------------------------
// Pencil decomposition
// ---------------------------------------------------------------------------

TEST(Pencils, CountAndLengthPerAxis) {
  const Extents3D e{4, 6, 8};
  EXPECT_EQ(filters::pencil_count(e, PencilAxis::kX), 48u);
  EXPECT_EQ(filters::pencil_count(e, PencilAxis::kY), 32u);
  EXPECT_EQ(filters::pencil_count(e, PencilAxis::kZ), 24u);
  EXPECT_EQ(filters::pencil_length(e, PencilAxis::kX), 4u);
  EXPECT_EQ(filters::pencil_length(e, PencilAxis::kY), 6u);
  EXPECT_EQ(filters::pencil_length(e, PencilAxis::kZ), 8u);
}

TEST(Pencils, EveryVoxelCoveredExactlyOnce) {
  const Extents3D e{5, 7, 3};
  for (const auto axis : {PencilAxis::kX, PencilAxis::kY, PencilAxis::kZ}) {
    Grid3D<int, ArrayOrderLayout> cover(e);
    const std::size_t pencils = filters::pencil_count(e, axis);
    const std::uint32_t len = filters::pencil_length(e, axis);
    for (std::size_t p = 0; p < pencils; ++p) {
      const auto pc = filters::pencil_coords(e, axis, p);
      for (std::uint32_t t = 0; t < len; ++t) {
        const auto v = filters::pencil_voxel(axis, pc, t);
        ASSERT_TRUE(e.contains(v.i, v.j, v.k));
        cover.at(v.i, v.j, v.k) += 1;
      }
    }
    cover.for_each_index([&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
      ASSERT_EQ(cover.at(i, j, k), 1) << to_string(axis);
    });
  }
}

// ---------------------------------------------------------------------------
// Filter semantics (vs the serial reference oracle)
// ---------------------------------------------------------------------------

TEST(BilateralSemantics, IdentityOnConstantVolume) {
  const Extents3D e{10, 10, 10};
  Grid3D<float, ArrayOrderLayout> src(e), dst(e);
  src.fill_from([](auto, auto, auto) { return 0.4f; });
  exec::ExecutionContext pool(2);
  filters::bilateral_parallel(src, dst, BilateralParams{2, 1.5f, 0.1f}, pool);
  dst.for_each_index([&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    ASSERT_NEAR(dst.at(i, j, k), 0.4f, 1e-6f);
  });
}

TEST(BilateralSemantics, SmoothsNoiseWithinRegions) {
  const Extents3D e{16, 8, 8};
  Grid3D<float, ArrayOrderLayout> src(e), dst(e);
  fill_noisy_step(src);
  exec::ExecutionContext pool(2);
  filters::bilateral_parallel(src, dst, BilateralParams{2, 2.0f, 0.2f}, pool);
  // Variance within the left flat region must drop.
  auto region_variance = [&](const auto& g) {
    double sum = 0, sum2 = 0;
    int n = 0;
    for (std::uint32_t k = 2; k < 6; ++k) {
      for (std::uint32_t j = 2; j < 6; ++j) {
        for (std::uint32_t i = 2; i < 6; ++i) {
          const double v = g.at(i, j, k);
          sum += v;
          sum2 += v * v;
          ++n;
        }
      }
    }
    const double mean = sum / n;
    return sum2 / n - mean * mean;
  };
  EXPECT_LT(region_variance(dst), 0.25 * region_variance(src));
}

TEST(BilateralSemantics, PreservesEdgesBetterThanGaussian) {
  const Extents3D e{16, 8, 8};
  Grid3D<float, ArrayOrderLayout> src(e), bilat(e), gauss(e);
  fill_noisy_step(src);
  exec::ExecutionContext pool(2);
  filters::bilateral_parallel(src, bilat, BilateralParams{2, 2.0f, 0.1f}, pool);
  filters::gaussian_convolve(src, gauss, 2, 2.0f, pool);
  // Edge magnitude across the step at i = 7|8.
  auto edge = [&](const auto& g) {
    double mag = 0;
    for (std::uint32_t k = 0; k < e.nz; ++k) {
      for (std::uint32_t j = 0; j < e.ny; ++j) {
        mag += std::abs(g.at(g_step, j, k) - g.at(g_step - 1, j, k));
      }
    }
    return mag;
  };
  EXPECT_GT(edge(bilat), 2.0 * edge(gauss));
}

TEST(BilateralSemantics, MatchesReferenceAllRadii) {
  const Extents3D e{12, 10, 8};
  Grid3D<float, ArrayOrderLayout> src(e);
  fill_noisy_step(src);
  exec::ExecutionContext pool(3);
  for (const unsigned radius : {1u, 2u, 3u}) {
    Grid3D<float, ArrayOrderLayout> expected(e), got(e);
    filters::bilateral_reference(src, expected, radius, 1.5f, 0.15f);
    filters::bilateral_parallel(src, got, BilateralParams{radius, 1.5f, 0.15f}, pool);
    expect_grids_near(expected, got, 1e-5f);
  }
}

// The key transparency property (paper Sec. III-C): results are identical
// regardless of source layout, pencil axis, and loop order — only the
// performance differs. Parameterized sweep over the full cross product.
class BilateralConfigSweep
    : public ::testing::TestWithParam<std::tuple<PencilAxis, LoopOrder, unsigned>> {};

TEST_P(BilateralConfigSweep, AllLayoutsMatchReference) {
  const auto [pencil, order, nthreads] = GetParam();
  const Extents3D e{11, 9, 7};
  Grid3D<float, ArrayOrderLayout> src(e);
  fill_noisy_step(src);
  const auto src_z = core::convert_layout<ZOrderLayout>(src);
  const auto src_t = core::convert_layout<TiledLayout>(src);
  const auto src_h = core::convert_layout<HilbertLayout>(src);

  BilateralParams params{1, 1.5f, 0.15f, pencil, order};
  Grid3D<float, ArrayOrderLayout> expected(e);
  filters::bilateral_reference(src, expected, params.radius, params.sigma_spatial,
                               params.sigma_range);

  exec::ExecutionContext pool(nthreads);
  Grid3D<float, ArrayOrderLayout> got(e);
  filters::bilateral_parallel(src, got, params, pool);
  expect_grids_near(expected, got, 1e-5f);
  filters::bilateral_parallel(src_z, got, params, pool);
  expect_grids_near(expected, got, 1e-5f);
  filters::bilateral_parallel(src_t, got, params, pool);
  expect_grids_near(expected, got, 1e-5f);
  filters::bilateral_parallel(src_h, got, params, pool);
  expect_grids_near(expected, got, 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(
    PencilOrderThreads, BilateralConfigSweep,
    ::testing::Combine(::testing::Values(PencilAxis::kX, PencilAxis::kY, PencilAxis::kZ),
                       ::testing::Values(LoopOrder::kXYZ, LoopOrder::kZYX),
                       ::testing::Values(1u, 2u, 5u)),
    [](const ::testing::TestParamInfo<std::tuple<PencilAxis, LoopOrder, unsigned>>& param) {
      return std::string(filters::to_string(std::get<0>(param.param))) + "_" +
             std::string(filters::to_string(std::get<1>(param.param))) + "_t" +
             std::to_string(std::get<2>(param.param));
    });

TEST(BilateralTraced, ProducesSameResultAndCounts) {
  const Extents3D e{12, 8, 8};
  Grid3D<float, ArrayOrderLayout> src(e);
  fill_noisy_step(src);
  const BilateralParams params{1, 1.5f, 0.15f};

  Grid3D<float, ArrayOrderLayout> expected(e);
  filters::bilateral_reference(src, expected, params.radius, params.sigma_spatial,
                               params.sigma_range);

  memsim::Hierarchy hierarchy(memsim::tiny_test_platform(), 2);
  Grid3D<float, ArrayOrderLayout> got(e);
  filters::bilateral_traced(src, got, params, hierarchy);
  expect_grids_near(expected, got, 1e-5f);

  // Every stencil tap goes through the model: 27 reads + 1 center read per
  // voxel at radius 1.
  EXPECT_EQ(hierarchy.total_accesses(), e.size() * 28);
}

TEST(BilateralTraced, DeterministicCounters) {
  const Extents3D e{10, 10, 10};
  Grid3D<float, ZOrderLayout> src(e);
  fill_noisy_step(src);
  auto run = [&] {
    memsim::Hierarchy h(memsim::tiny_test_platform(), 4);
    Grid3D<float, ArrayOrderLayout> dst(e);
    filters::bilateral_traced(src, dst, BilateralParams{1, 1.5f, 0.15f}, h);
    return std::make_pair(h.counter("PAPI_L3_TCA"), h.memory_fills());
  };
  EXPECT_EQ(run(), run());
}

TEST(BilateralTraced, ZOrderReducesEscapesInAgainstGrainConfig) {
  // The paper's Fig. 2 effect in miniature: pz+zyx on a volume larger than
  // the tiny L2 produces more private-stack escapes under array order than
  // under Z-order.
  const Extents3D e = Extents3D::cube(24);
  Grid3D<float, ArrayOrderLayout> src_a(e);
  fill_noisy_step(src_a);
  const auto src_z = core::convert_layout<ZOrderLayout>(src_a);
  const BilateralParams params{2, 1.5f, 0.15f, PencilAxis::kZ, LoopOrder::kZYX};

  Grid3D<float, ArrayOrderLayout> dst(e);
  memsim::Hierarchy ha(memsim::tiny_test_platform(), 2);
  filters::bilateral_traced(src_a, dst, params, ha);
  memsim::Hierarchy hz(memsim::tiny_test_platform(), 2);
  filters::bilateral_traced(src_z, dst, params, hz);

  EXPECT_LT(hz.counter("L2_DATA_READ_MISS_MEM_FILL"),
            ha.counter("L2_DATA_READ_MISS_MEM_FILL"));
}

// ---------------------------------------------------------------------------
// Curve-order sweep driver
// ---------------------------------------------------------------------------

TEST(BilateralZSweep, MatchesReferenceOnBothLayouts) {
  const Extents3D e{10, 9, 7};
  Grid3D<float, ArrayOrderLayout> src(e);
  fill_noisy_step(src);
  const auto src_z = core::convert_layout<ZOrderLayout>(src);
  const BilateralParams params{1, 1.5f, 0.15f};
  Grid3D<float, ArrayOrderLayout> expected(e), got(e);
  filters::bilateral_reference(src, expected, params.radius, params.sigma_spatial,
                               params.sigma_range);
  exec::ExecutionContext pool(3);
  filters::bilateral_zsweep(src, got, params, pool);
  expect_grids_near(expected, got, 1e-5f);
  filters::bilateral_zsweep(src_z, got, params, pool);
  expect_grids_near(expected, got, 1e-5f);
}

TEST(BilateralZSweep, TracedMatchesAndIsDeterministic) {
  const Extents3D e{8, 8, 8};
  Grid3D<float, ZOrderLayout> src(e);
  fill_noisy_step(src);
  const BilateralParams params{1, 1.5f, 0.15f};
  auto run = [&] {
    memsim::Hierarchy h(memsim::tiny_test_platform(), 2);
    Grid3D<float, ArrayOrderLayout> dst(e);
    filters::bilateral_zsweep_traced(src, dst, params, h);
    return std::make_pair(h.memory_fills(), dst.at(3, 4, 5));
  };
  const auto first = run();
  EXPECT_EQ(first, run());
  // Full (uncapped) traced run covers every voxel: 28 reads per voxel.
  memsim::Hierarchy h(memsim::tiny_test_platform(), 2);
  Grid3D<float, ArrayOrderLayout> dst(e);
  filters::bilateral_zsweep_traced(src, dst, params, h);
  EXPECT_EQ(h.total_accesses(), e.size() * 28);
}

// ---------------------------------------------------------------------------
// Gaussian baseline
// ---------------------------------------------------------------------------

TEST(Gaussian, Kernel1DNormalizedAndSymmetric) {
  const auto taps = filters::gaussian_kernel_1d(3, 1.2f);
  ASSERT_EQ(taps.size(), 7u);
  float sum = 0;
  for (const float t : taps) {
    sum += t;
  }
  EXPECT_NEAR(sum, 1.0f, 1e-6f);
  EXPECT_FLOAT_EQ(taps[0], taps[6]);
  EXPECT_FLOAT_EQ(taps[1], taps[5]);
  EXPECT_GT(taps[3], taps[2]);
}

TEST(Gaussian, ConvolveIdentityOnConstant) {
  const Extents3D e{8, 8, 8};
  Grid3D<float, ArrayOrderLayout> src(e), dst(e);
  src.fill_from([](auto, auto, auto) { return 0.7f; });
  exec::ExecutionContext pool(2);
  filters::gaussian_convolve(src, dst, 2, 1.5f, pool);
  dst.for_each_index([&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    ASSERT_NEAR(dst.at(i, j, k), 0.7f, 1e-5f);
  });
}

TEST(Gaussian, SeparableMatchesDense) {
  const Extents3D e{10, 9, 8};
  Grid3D<float, ArrayOrderLayout> src(e), dense(e), separable(e);
  fill_noisy_step(src);
  exec::ExecutionContext pool(2);
  filters::gaussian_convolve(src, dense, 2, 1.3f, pool);
  filters::gaussian_separable(src, separable, 2, 1.3f);
  // Interior voxels match exactly up to rounding; border voxels differ
  // because clamp-to-edge does not commute with separation.
  for (std::uint32_t k = 2; k < e.nz - 2; ++k) {
    for (std::uint32_t j = 2; j < e.ny - 2; ++j) {
      for (std::uint32_t i = 2; i < e.nx - 2; ++i) {
        ASSERT_NEAR(dense.at(i, j, k), separable.at(i, j, k), 1e-4f);
      }
    }
  }
}

TEST(Gaussian, GatherSimdMatchesDirect) {
  // The sliding-window gather + explicit-SIMD path reassociates the tap
  // sum and pre-multiplies the weight cube; output must stay within the
  // kernels' 1e-5 tolerance of the direct path on every layout, and border
  // voxels (which fall back to the clamped kernel) must match exactly.
  const Extents3D e{17, 11, 13};
  Grid3D<float, ArrayOrderLayout> src(e), direct(e), gathered(e), gathered_z(e);
  fill_noisy_step(src);
  const auto src_z = core::convert_layout<ZOrderLayout>(src);
  exec::ExecutionContext pool(2);
  for (unsigned radius : {1u, 2u, 3u}) {
    filters::gaussian_convolve(src, direct, radius, 1.4f, pool);
    filters::gaussian_convolve(src, gathered, radius, 1.4f, pool, /*use_gather=*/true);
    filters::gaussian_convolve(src_z, gathered_z, radius, 1.4f, pool,
                               /*use_gather=*/true);
    expect_grids_near(direct, gathered, 1e-5f);
    // Same pencil arithmetic regardless of source layout: bit-identical.
    gathered.for_each_index([&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
      ASSERT_EQ(gathered.at(i, j, k), gathered_z.at(i, j, k))
          << i << "," << j << "," << k;
    });
    // Border ring falls back to the exact clamped kernel.
    for (std::uint32_t j = 0; j < e.ny; ++j) {
      for (std::uint32_t i = 0; i < e.nx; ++i) {
        ASSERT_EQ(direct.at(i, j, 0), gathered.at(i, j, 0));
        ASSERT_EQ(direct.at(i, j, e.nz - 1), gathered.at(i, j, e.nz - 1));
      }
    }
  }
}

TEST(Gaussian, WorksOnZOrderSource) {
  const Extents3D e{9, 9, 9};
  Grid3D<float, ArrayOrderLayout> src(e), from_a(e), from_z(e);
  fill_noisy_step(src);
  const auto src_z = core::convert_layout<ZOrderLayout>(src);
  exec::ExecutionContext pool(2);
  filters::gaussian_convolve(src, from_a, 1, 1.0f, pool);
  filters::gaussian_convolve(src_z, from_z, 1, 1.0f, pool);
  expect_grids_near(from_a, from_z, 1e-6f);
}

TEST(Integration, PhantomDenoisingImprovesFidelity) {
  // End-to-end: noisy phantom -> bilateral -> closer to the clean phantom.
  const Extents3D e{24, 24, 24};
  Grid3D<float, ArrayOrderLayout> clean(e), noisy(e), denoised(e);
  data::fill_mri_phantom(clean, {.seed = 9, .texture_amplitude = 0.0f, .noise_sigma = 0.0f});
  data::fill_mri_phantom(noisy, {.seed = 9, .texture_amplitude = 0.0f, .noise_sigma = 0.15f});
  exec::ExecutionContext pool(2);
  filters::bilateral_parallel(noisy, denoised, BilateralParams{2, 1.5f, 0.15f}, pool);
  auto rmse = [&](const auto& g) {
    double sum = 0;
    g.for_each_index([&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
      const double d = g.at(i, j, k) - clean.at(i, j, k);
      sum += d * d;
    });
    return std::sqrt(sum / static_cast<double>(e.size()));
  };
  EXPECT_LT(rmse(denoised), 0.6 * rmse(noisy));
}
