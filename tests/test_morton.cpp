// Unit and property tests for the Morton codecs (src/sfcvis/core/morton.*).
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <tuple>
#include <vector>

#include "sfcvis/core/morton.hpp"

namespace core = sfcvis::core;

namespace {

/// Reference encoder: interleave bits one at a time.
std::uint64_t naive_encode_3d(std::uint32_t x, std::uint32_t y, std::uint32_t z) {
  std::uint64_t m = 0;
  for (unsigned b = 0; b < core::kMortonMaxBits3D; ++b) {
    m |= (static_cast<std::uint64_t>((x >> b) & 1u)) << (3 * b);
    m |= (static_cast<std::uint64_t>((y >> b) & 1u)) << (3 * b + 1);
    m |= (static_cast<std::uint64_t>((z >> b) & 1u)) << (3 * b + 2);
  }
  return m;
}

std::uint64_t naive_encode_2d(std::uint32_t x, std::uint32_t y) {
  std::uint64_t m = 0;
  for (unsigned b = 0; b < core::kMortonMaxBits2D; ++b) {
    m |= (static_cast<std::uint64_t>((x >> b) & 1u)) << (2 * b);
    m |= (static_cast<std::uint64_t>((y >> b) & 1u)) << (2 * b + 1);
  }
  return m;
}

std::vector<std::uint32_t> interesting_coords() {
  return {0u,    1u,      2u,      3u,          7u,      8u,          15u,     16u,
          31u,   255u,    256u,    511u,        512u,    1023u,       4095u,   65535u,
          65536u, 0xfffffu, 0x100000u, 0x1fffffu};
}

}  // namespace

TEST(Morton3D, KnownValues) {
  EXPECT_EQ(core::morton_encode_3d(0, 0, 0), 0u);
  EXPECT_EQ(core::morton_encode_3d(1, 0, 0), 0b001u);
  EXPECT_EQ(core::morton_encode_3d(0, 1, 0), 0b010u);
  EXPECT_EQ(core::morton_encode_3d(0, 0, 1), 0b100u);
  EXPECT_EQ(core::morton_encode_3d(1, 1, 1), 0b111u);
  EXPECT_EQ(core::morton_encode_3d(2, 0, 0), 0b001000u);
  EXPECT_EQ(core::morton_encode_3d(7, 7, 7), 0b111111111u);
  // Corner of a 512^3 volume occupies 27 interleaved bits.
  EXPECT_EQ(core::morton_encode_3d(511, 511, 511), (1u << 27) - 1);
}

TEST(Morton3D, MatchesNaiveOnInterestingCoords) {
  for (std::uint32_t x : interesting_coords()) {
    for (std::uint32_t y : interesting_coords()) {
      for (std::uint32_t z : interesting_coords()) {
        EXPECT_EQ(core::morton_encode_3d(x, y, z), naive_encode_3d(x, y, z))
            << x << "," << y << "," << z;
      }
    }
  }
}

TEST(Morton3D, RoundTripRandom) {
  std::mt19937 rng(42);
  std::uniform_int_distribution<std::uint32_t> dist(0, (1u << 21) - 1);
  for (int n = 0; n < 20000; ++n) {
    const std::uint32_t x = dist(rng), y = dist(rng), z = dist(rng);
    const auto m = core::morton_encode_3d(x, y, z);
    const auto c = core::morton_decode_3d(m);
    EXPECT_EQ(c, (core::MortonCoord3D{x, y, z}));
  }
}

TEST(Morton3D, MonotonePerAxis) {
  // With the other axes fixed, the code is strictly increasing in each
  // coordinate: the property that makes the max index sit at the max corner.
  std::mt19937 rng(7);
  std::uniform_int_distribution<std::uint32_t> dist(0, (1u << 21) - 2);
  for (int n = 0; n < 5000; ++n) {
    const std::uint32_t x = dist(rng), y = dist(rng), z = dist(rng);
    EXPECT_LT(core::morton_encode_3d(x, y, z), core::morton_encode_3d(x + 1, y, z));
    EXPECT_LT(core::morton_encode_3d(x, y, z), core::morton_encode_3d(x, y + 1, z));
    EXPECT_LT(core::morton_encode_3d(x, y, z), core::morton_encode_3d(x, y, z + 1));
  }
}

TEST(Morton3D, BijectiveOnSmallCube) {
  std::vector<bool> seen(32 * 32 * 32, false);
  for (std::uint32_t z = 0; z < 32; ++z) {
    for (std::uint32_t y = 0; y < 32; ++y) {
      for (std::uint32_t x = 0; x < 32; ++x) {
        const auto m = core::morton_encode_3d(x, y, z);
        ASSERT_LT(m, seen.size());
        EXPECT_FALSE(seen[m]) << "collision at " << m;
        seen[m] = true;
      }
    }
  }
}

TEST(Morton2D, KnownValuesAndNaive) {
  EXPECT_EQ(core::morton_encode_2d(0, 0), 0u);
  EXPECT_EQ(core::morton_encode_2d(1, 0), 0b01u);
  EXPECT_EQ(core::morton_encode_2d(0, 1), 0b10u);
  EXPECT_EQ(core::morton_encode_2d(3, 5), naive_encode_2d(3, 5));
  for (std::uint32_t x : interesting_coords()) {
    for (std::uint32_t y : interesting_coords()) {
      EXPECT_EQ(core::morton_encode_2d(x, y), naive_encode_2d(x, y));
    }
  }
}

TEST(Morton2D, RoundTripRandomFullRange) {
  std::mt19937 rng(43);
  std::uniform_int_distribution<std::uint32_t> dist;  // full 32-bit range
  for (int n = 0; n < 20000; ++n) {
    const std::uint32_t x = dist(rng), y = dist(rng);
    const auto c = core::morton_decode_2d(core::morton_encode_2d(x, y));
    EXPECT_EQ(c, (core::MortonCoord2D{x, y}));
  }
}

TEST(MortonBits, PartCompactAreInverse) {
  std::mt19937 rng(44);
  std::uniform_int_distribution<std::uint32_t> d21(0, (1u << 21) - 1);
  std::uniform_int_distribution<std::uint32_t> d32;
  for (int n = 0; n < 10000; ++n) {
    const std::uint32_t v3 = d21(rng);
    EXPECT_EQ(core::compact_bits_3(core::part_bits_3(v3)), v3);
    const std::uint32_t v2 = d32(rng);
    EXPECT_EQ(core::compact_bits_2(core::part_bits_2(v2)), v2);
  }
}

TEST(MortonBits, PartBitsLandOnStride) {
  // Every set output bit of part_bits_3 must sit at a position ≡ 0 (mod 3).
  std::mt19937 rng(45);
  std::uniform_int_distribution<std::uint32_t> d21(0, (1u << 21) - 1);
  for (int n = 0; n < 2000; ++n) {
    const std::uint64_t spread = core::part_bits_3(d21(rng));
    EXPECT_EQ(spread & ~core::kMortonMaskX3D, 0u);
  }
}

TEST(MortonLut, MatchesMagicBits3D) {
  std::mt19937 rng(46);
  std::uniform_int_distribution<std::uint32_t> dist(0, (1u << 21) - 1);
  for (std::uint32_t v : interesting_coords()) {
    EXPECT_EQ(core::morton_encode_3d_lut(v, v / 2, v / 3),
              core::morton_encode_3d(v, v / 2, v / 3));
  }
  for (int n = 0; n < 20000; ++n) {
    const std::uint32_t x = dist(rng), y = dist(rng), z = dist(rng);
    EXPECT_EQ(core::morton_encode_3d_lut(x, y, z), core::morton_encode_3d(x, y, z));
  }
}

TEST(MortonLut, DecodeMatchesMagicBits3D) {
  std::mt19937 rng(47);
  std::uniform_int_distribution<std::uint64_t> dist(0, (std::uint64_t{1} << 63) - 1);
  for (int n = 0; n < 20000; ++n) {
    const std::uint64_t m = dist(rng);
    EXPECT_EQ(core::morton_decode_3d_lut(m), core::morton_decode_3d(m));
  }
}

TEST(MortonLut, MatchesMagicBits2D) {
  std::mt19937 rng(48);
  std::uniform_int_distribution<std::uint32_t> dist;
  for (int n = 0; n < 20000; ++n) {
    const std::uint32_t x = dist(rng), y = dist(rng);
    EXPECT_EQ(core::morton_encode_2d_lut(x, y), core::morton_encode_2d(x, y));
  }
}

#if defined(__BMI2__)
TEST(MortonBmi2, MatchesMagicBits) {
  std::mt19937 rng(49);
  std::uniform_int_distribution<std::uint32_t> dist(0, (1u << 21) - 1);
  for (int n = 0; n < 20000; ++n) {
    const std::uint32_t x = dist(rng), y = dist(rng), z = dist(rng);
    const auto m = core::morton_encode_3d(x, y, z);
    EXPECT_EQ(core::morton_encode_3d_bmi2(x, y, z), m);
    EXPECT_EQ(core::morton_decode_3d_bmi2(m), core::morton_decode_3d(m));
  }
}
#endif

TEST(MortonStep, IncrementMatchesReencode) {
  std::mt19937 rng(50);
  std::uniform_int_distribution<std::uint32_t> dist(0, (1u << 21) - 2);
  for (int n = 0; n < 10000; ++n) {
    const std::uint32_t x = dist(rng), y = dist(rng), z = dist(rng);
    const auto m = core::morton_encode_3d(x, y, z);
    EXPECT_EQ(core::morton_inc_x(m), core::morton_encode_3d(x + 1, y, z));
    EXPECT_EQ(core::morton_inc_y(m), core::morton_encode_3d(x, y + 1, z));
    EXPECT_EQ(core::morton_inc_z(m), core::morton_encode_3d(x, y, z + 1));
  }
}

TEST(MortonStep, DecrementMatchesReencode) {
  std::mt19937 rng(51);
  std::uniform_int_distribution<std::uint32_t> dist(1, (1u << 21) - 1);
  for (int n = 0; n < 10000; ++n) {
    const std::uint32_t x = dist(rng), y = dist(rng), z = dist(rng);
    const auto m = core::morton_encode_3d(x, y, z);
    EXPECT_EQ(core::morton_dec_x(m), core::morton_encode_3d(x - 1, y, z));
    EXPECT_EQ(core::morton_dec_y(m), core::morton_encode_3d(x, y - 1, z));
    EXPECT_EQ(core::morton_dec_z(m), core::morton_encode_3d(x, y, z - 1));
  }
}

TEST(MortonStep, IncThenDecIsIdentity) {
  std::mt19937 rng(52);
  std::uniform_int_distribution<std::uint32_t> dist(0, (1u << 21) - 2);
  for (int n = 0; n < 5000; ++n) {
    const auto m = core::morton_encode_3d(dist(rng), dist(rng), dist(rng));
    EXPECT_EQ(core::morton_dec_x(core::morton_inc_x(m)), m);
    EXPECT_EQ(core::morton_dec_y(core::morton_inc_y(m)), m);
    EXPECT_EQ(core::morton_dec_z(core::morton_inc_z(m)), m);
  }
}

TEST(MortonLocality, FewerPageCrossingsThanRowMajorOnRandomUnitSteps) {
  // Quantified version of the paper's Sec. II-B argument. The right
  // locality metric is not the mean address delta (Morton's rare giant
  // jumps dominate that) but how often a unit step in index space leaves a
  // fixed-size block of memory. At 4 KiB blocks (1024 floats) on a 256^3
  // grid, row-major always escapes on k-steps and escapes on 1/4 of
  // j-steps, while Z-order escapes on only ~1/16 to ~1/8 of steps on any
  // axis.
  std::mt19937 rng(53);
  std::uniform_int_distribution<std::uint32_t> dist(1, 254);
  const std::uint64_t n = 256;
  const std::uint64_t block = 1024;  // elements per 4 KiB block of floats
  std::uint64_t cross_z = 0, cross_row = 0;
  const int samples = 60000;
  for (int s = 0; s < samples; ++s) {
    const std::uint32_t x = dist(rng), y = dist(rng), z = dist(rng);
    const int axis = static_cast<int>(rng() % 3);
    const std::uint32_t nx2 = x + (axis == 0), ny2 = y + (axis == 1), nz2 = z + (axis == 2);
    cross_z += (core::morton_encode_3d(x, y, z) / block) !=
               (core::morton_encode_3d(nx2, ny2, nz2) / block);
    const std::uint64_t ra = x + n * (y + n * z);
    const std::uint64_t rb = nx2 + n * (ny2 + n * nz2);
    cross_row += (ra / block) != (rb / block);
  }
  const double fz = static_cast<double>(cross_z) / samples;
  const double fr = static_cast<double>(cross_row) / samples;
  EXPECT_LT(fz, 0.5 * fr);
}

TEST(MortonConstexpr, UsableAtCompileTime) {
  static_assert(core::morton_encode_3d(3, 1, 2) ==
                ((0b11ull & 1) | ((0b1ull & 1) << 1) | ((0b10ull & 1) << 2) |
                 (((3ull >> 1) & 1) << 3) | (((1ull >> 1) & 1) << 4) | (((2ull >> 1) & 1) << 5)));
  static_assert(core::morton_decode_3d(core::morton_encode_3d(5, 6, 7)) ==
                core::MortonCoord3D{5, 6, 7});
  static_assert(core::morton_decode_2d(core::morton_encode_2d(1000, 2000)) ==
                core::MortonCoord2D{1000, 2000});
  SUCCEED();
}

TEST(MortonStep, SignedStepMatchesReencode) {
  std::mt19937 rng(54);
  std::uniform_int_distribution<std::uint32_t> coord(64, (1u << 21) - 65);
  std::uniform_int_distribution<std::int32_t> delta(-64, 64);
  for (int n = 0; n < 10000; ++n) {
    const std::uint32_t x = coord(rng), y = coord(rng), z = coord(rng);
    const std::int32_t d = delta(rng);
    const auto m = core::morton_encode_3d(x, y, z);
    EXPECT_EQ(core::morton_step_x(m, d), core::morton_encode_3d(x + d, y, z));
    EXPECT_EQ(core::morton_step_y(m, d), core::morton_encode_3d(x, y + d, z));
    EXPECT_EQ(core::morton_step_z(m, d), core::morton_encode_3d(x, y, z + d));
  }
}

TEST(MortonStep, UnitStepMatchesIncDec) {
  std::mt19937 rng(55);
  std::uniform_int_distribution<std::uint32_t> dist(1, (1u << 21) - 2);
  for (int n = 0; n < 5000; ++n) {
    const auto m = core::morton_encode_3d(dist(rng), dist(rng), dist(rng));
    EXPECT_EQ(core::morton_step_x(m, 1), core::morton_inc_x(m));
    EXPECT_EQ(core::morton_step_y(m, 1), core::morton_inc_y(m));
    EXPECT_EQ(core::morton_step_z(m, 1), core::morton_inc_z(m));
    EXPECT_EQ(core::morton_step_x(m, -1), core::morton_dec_x(m));
    EXPECT_EQ(core::morton_step_y(m, -1), core::morton_dec_y(m));
    EXPECT_EQ(core::morton_step_z(m, -1), core::morton_dec_z(m));
    EXPECT_EQ(core::morton_step_x(m, 0), m);
    EXPECT_EQ(core::morton_step_y(m, 0), m);
    EXPECT_EQ(core::morton_step_z(m, 0), m);
  }
}

TEST(MortonStep, SignedStepWrapsModulo21Bits) {
  // Axis arithmetic is modulo 2^21, like coordinate arithmetic on the
  // dilated axis field: stepping past either end wraps, and inverse steps
  // cancel wherever they land.
  constexpr std::uint32_t kMask = (1u << 21) - 1;
  const auto m = core::morton_encode_3d(5, 10, 20);
  EXPECT_EQ(core::morton_step_x(m, -6), core::morton_encode_3d((5 - 6) & kMask, 10, 20));
  EXPECT_EQ(core::morton_step_z(core::morton_encode_3d(0, 0, kMask), 1),
            core::morton_encode_3d(0, 0, 0));
  std::mt19937 rng(56);
  std::uniform_int_distribution<std::uint32_t> dist(0, kMask);
  std::uniform_int_distribution<std::int32_t> delta(-100000, 100000);
  for (int n = 0; n < 2000; ++n) {
    const auto z = core::morton_encode_3d(dist(rng), dist(rng), dist(rng));
    const std::int32_t d = delta(rng);
    EXPECT_EQ(core::morton_step_x(core::morton_step_x(z, d), -d), z);
    EXPECT_EQ(core::morton_step_y(core::morton_step_y(z, d), -d), z);
    EXPECT_EQ(core::morton_step_z(core::morton_step_z(z, d), -d), z);
  }
}

TEST(MortonStep, WraparoundAt21BitBoundaryAllAxes) {
  // The hard case for the dilated-add trick: incrementing 2^21-1 must carry
  // through all 21 interleaved bit positions, wrap the stepped axis to 0,
  // and leave the other two axis fields untouched — even when those fields
  // are all-ones too (their bits are exactly the ones a leaked carry would
  // flip).
  constexpr std::uint32_t kMax = (1u << 21) - 1;
  for (const std::uint32_t other : {0u, 1u, 0x155555u, kMax}) {
    SCOPED_TRACE(other);
    const auto x_hi = core::morton_encode_3d(kMax, other, other);
    const auto y_hi = core::morton_encode_3d(other, kMax, other);
    const auto z_hi = core::morton_encode_3d(other, other, kMax);
    const auto x_lo = core::morton_encode_3d(0, other, other);
    const auto y_lo = core::morton_encode_3d(other, 0, other);
    const auto z_lo = core::morton_encode_3d(other, other, 0);
    // Ascending across the boundary: max -> 0, via both inc_* and step(+1).
    EXPECT_EQ(core::morton_inc_x(x_hi), x_lo);
    EXPECT_EQ(core::morton_inc_y(y_hi), y_lo);
    EXPECT_EQ(core::morton_inc_z(z_hi), z_lo);
    EXPECT_EQ(core::morton_step_x(x_hi, 1), x_lo);
    EXPECT_EQ(core::morton_step_y(y_hi, 1), y_lo);
    EXPECT_EQ(core::morton_step_z(z_hi, 1), z_lo);
    // Descending across the boundary: 0 -> max, via both dec_* and step(-1).
    EXPECT_EQ(core::morton_dec_x(x_lo), x_hi);
    EXPECT_EQ(core::morton_dec_y(y_lo), y_hi);
    EXPECT_EQ(core::morton_dec_z(z_lo), z_hi);
    EXPECT_EQ(core::morton_step_x(x_lo, -1), x_hi);
    EXPECT_EQ(core::morton_step_y(y_lo, -1), y_hi);
    EXPECT_EQ(core::morton_step_z(z_lo, -1), z_hi);
  }
  // All three axes saturated at once: each increment wraps only its own
  // axis and the other two all-ones fields survive the full carry ripple.
  const auto all_max = core::morton_encode_3d(kMax, kMax, kMax);
  EXPECT_EQ(core::morton_inc_x(all_max), core::morton_encode_3d(0, kMax, kMax));
  EXPECT_EQ(core::morton_inc_y(all_max), core::morton_encode_3d(kMax, 0, kMax));
  EXPECT_EQ(core::morton_inc_z(all_max), core::morton_encode_3d(kMax, kMax, 0));
  // Multi-unit signed steps straddling the boundary in both directions.
  EXPECT_EQ(core::morton_step_x(core::morton_encode_3d(kMax - 2, 7, 9), 5),
            core::morton_encode_3d(2, 7, 9));
  EXPECT_EQ(core::morton_step_y(core::morton_encode_3d(7, 3, 9), -10),
            core::morton_encode_3d(7, (3u - 10u) & kMax, 9));
  EXPECT_EQ(core::morton_step_z(core::morton_encode_3d(7, 9, kMax), 2),
            core::morton_encode_3d(7, 9, 1));
}
