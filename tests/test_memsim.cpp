// Tests for the cache model and hierarchy (src/sfcvis/memsim/*).
#include <gtest/gtest.h>

#include <cstdint>
#include <random>

#include "sfcvis/core/grid.hpp"
#include "sfcvis/core/traced_view.hpp"
#include "sfcvis/memsim/cache.hpp"
#include "sfcvis/memsim/hierarchy.hpp"
#include "sfcvis/memsim/platforms.hpp"

namespace core = sfcvis::core;
namespace memsim = sfcvis::memsim;

using memsim::Cache;
using memsim::CacheConfig;
using memsim::Hierarchy;
using memsim::PlatformSpec;

// ---------------------------------------------------------------------------
// Single cache
// ---------------------------------------------------------------------------

TEST(CacheModel, ColdMissThenHit) {
  Cache c(CacheConfig{"t", 1024, 64, 2});
  EXPECT_FALSE(c.access(100));
  EXPECT_TRUE(c.access(100));
  EXPECT_TRUE(c.access(100));
  EXPECT_EQ(c.stats().accesses, 3u);
  EXPECT_EQ(c.stats().misses, 1u);
  EXPECT_EQ(c.stats().hits(), 2u);
}

TEST(CacheModel, DistinctLinesMissIndependently) {
  Cache c(CacheConfig{"t", 4096, 64, 4});
  for (std::uint64_t line = 0; line < 16; ++line) {
    EXPECT_FALSE(c.access(line));
  }
  for (std::uint64_t line = 0; line < 16; ++line) {
    EXPECT_TRUE(c.access(line));
  }
}

TEST(CacheModel, LruEvictionOrder) {
  // 2-way, 8 sets: lines 0, 8, 16 all map to set 0.
  Cache c(CacheConfig{"t", 1024, 64, 2});
  EXPECT_FALSE(c.access(0));
  EXPECT_FALSE(c.access(8));
  EXPECT_TRUE(c.access(0));    // 0 becomes MRU; 8 is LRU
  EXPECT_FALSE(c.access(16));  // evicts 8
  EXPECT_TRUE(c.access(0));
  EXPECT_FALSE(c.access(8));  // 8 was evicted
}

TEST(CacheModel, ContainsDoesNotMutate) {
  Cache c(CacheConfig{"t", 1024, 64, 2});
  c.access(42);
  const auto before = c.stats().accesses;
  EXPECT_TRUE(c.contains(42));
  EXPECT_FALSE(c.contains(43));
  EXPECT_EQ(c.stats().accesses, before);
}

TEST(CacheModel, CapacityIsRespected) {
  // 16 lines capacity; touching 17 distinct lines twice must produce
  // at least one second-pass miss, while 16 lines fit entirely.
  Cache fits(CacheConfig{"t", 1024, 64, 2});
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t line = 0; line < 16; ++line) {
      fits.access(line);
    }
  }
  EXPECT_EQ(fits.stats().misses, 16u);

  Cache overflows(CacheConfig{"t", 1024, 64, 2});
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t line = 0; line < 17; ++line) {
      overflows.access(line);
    }
  }
  EXPECT_GT(overflows.stats().misses, 17u);
}

TEST(CacheModel, ResetAndResetStats) {
  Cache c(CacheConfig{"t", 1024, 64, 2});
  c.access(1);
  c.access(1);
  c.reset_stats();
  EXPECT_EQ(c.stats().accesses, 0u);
  EXPECT_TRUE(c.access(1));  // contents stayed warm
  c.reset();
  EXPECT_FALSE(c.access(1));  // cold again
}

TEST(CacheModel, RejectsBadGeometry) {
  EXPECT_THROW(Cache(CacheConfig{"t", 1024, 48, 2}), std::invalid_argument);
  EXPECT_THROW(Cache(CacheConfig{"t", 1024, 64, 0}), std::invalid_argument);
  EXPECT_THROW(Cache(CacheConfig{"t", 64, 64, 2}), std::invalid_argument);
  EXPECT_THROW(Cache(CacheConfig{"t", 3 * 64, 64, 1}), std::invalid_argument);
}

TEST(CacheModel, MissRate) {
  Cache c(CacheConfig{"t", 1024, 64, 2});
  c.access(0);
  c.access(0);
  c.access(0);
  c.access(1);
  EXPECT_DOUBLE_EQ(c.stats().miss_rate(), 0.5);
}

TEST(CacheModel, FullyAssociativeBehaviour) {
  // One set, 16 ways: any 16 lines co-reside regardless of address bits.
  Cache c(CacheConfig{"t", 1024, 64, 16});
  for (std::uint64_t line = 0; line < 16; ++line) {
    c.access(line * 977 + 3);
  }
  for (std::uint64_t line = 0; line < 16; ++line) {
    EXPECT_TRUE(c.contains(line * 977 + 3));
  }
}

// ---------------------------------------------------------------------------
// Hierarchy
// ---------------------------------------------------------------------------

TEST(HierarchyModel, MissFallsThroughLevels) {
  Hierarchy h(memsim::tiny_test_platform(), 1);
  h.access(0, 0x1000, 4);
  auto levels = h.level_stats();
  ASSERT_EQ(levels.size(), 3u);
  EXPECT_EQ(levels[0].stats.accesses, 1u);  // L1 access, miss
  EXPECT_EQ(levels[0].stats.misses, 1u);
  EXPECT_EQ(levels[1].stats.accesses, 1u);  // L2 access, miss
  EXPECT_EQ(levels[2].stats.accesses, 1u);  // LLC access, miss
  EXPECT_EQ(h.memory_fills(), 1u);
}

TEST(HierarchyModel, L1HitStopsPropagation) {
  Hierarchy h(memsim::tiny_test_platform(), 1);
  h.access(0, 0x1000, 4);
  h.access(0, 0x1000, 4);
  auto levels = h.level_stats();
  EXPECT_EQ(levels[0].stats.accesses, 2u);
  EXPECT_EQ(levels[1].stats.accesses, 1u);  // second access never left L1
  EXPECT_EQ(levels[2].stats.accesses, 1u);
  EXPECT_EQ(h.memory_fills(), 1u);
}

TEST(HierarchyModel, SameLineAccessesCoalesceInL1) {
  Hierarchy h(memsim::tiny_test_platform(), 1);
  // 16 floats on one 64-byte line: 1 miss, 15 hits.
  for (int e = 0; e < 16; ++e) {
    h.access(0, 0x2000 + 4 * static_cast<std::uint64_t>(e), 4);
  }
  EXPECT_EQ(h.level_stats()[0].stats.misses, 1u);
  EXPECT_EQ(h.memory_fills(), 1u);
}

TEST(HierarchyModel, StraddlingAccessTouchesBothLines) {
  Hierarchy h(memsim::tiny_test_platform(), 1);
  h.access(0, 0x1000 + 62, 4);  // spans lines 0x1000 and 0x1040
  EXPECT_EQ(h.level_stats()[0].stats.accesses, 2u);
  EXPECT_EQ(h.memory_fills(), 2u);
}

TEST(HierarchyModel, ThreadsHavePrivateL1L2) {
  Hierarchy h(memsim::tiny_test_platform(), 2);
  h.access(0, 0x1000, 4);
  h.access(1, 0x1000, 4);  // same line, other thread: private miss ...
  auto levels = h.level_stats();
  EXPECT_EQ(levels[0].stats.misses, 2u);
  EXPECT_EQ(levels[1].stats.misses, 2u);
  // ... but the second thread hits in the shared LLC.
  EXPECT_EQ(levels[2].stats.accesses, 2u);
  EXPECT_EQ(levels[2].stats.misses, 1u);
  EXPECT_EQ(h.memory_fills(), 1u);
}

TEST(HierarchyModel, NamedCountersMatchLevelStats) {
  Hierarchy h(memsim::tiny_test_platform(), 2);
  std::mt19937 rng(3);
  for (int n = 0; n < 5000; ++n) {
    h.access(rng() % 2, (rng() % 4096) * 4, 4);
  }
  const auto levels = h.level_stats();
  EXPECT_EQ(h.counter("PAPI_L3_TCA"), levels[2].stats.accesses);
  EXPECT_EQ(h.counter("L2_DATA_READ_MISS_MEM_FILL"), levels[1].stats.misses);
  EXPECT_EQ(h.counter("MEM_FILLS"), h.memory_fills());
  EXPECT_EQ(h.counter("PAPI_L3_TCA"), levels[1].stats.misses)
      << "L3 accesses must equal L2 misses by construction";
}

TEST(HierarchyModel, UnknownCounterThrows) {
  Hierarchy h(memsim::tiny_test_platform(), 1);
  EXPECT_THROW((void)h.counter("PAPI_TOT_CYC"), std::out_of_range);
}

TEST(HierarchyModel, MicHasNoL3Counter) {
  Hierarchy h(memsim::mic_knc(), 1);
  EXPECT_THROW((void)h.counter("PAPI_L3_TCA"), std::out_of_range);
  h.access(0, 0x1000, 4);
  EXPECT_EQ(h.counter("L2_DATA_READ_MISS_MEM_FILL"), 1u);
  EXPECT_EQ(h.memory_fills(), 1u);
}

TEST(HierarchyModel, PlatformLookup) {
  EXPECT_EQ(memsim::platform_by_name("ivybridge").name, "ivybridge");
  EXPECT_EQ(memsim::platform_by_name("mic").name, "mic");
  EXPECT_EQ(memsim::platform_by_name("tiny").name, "tiny");
  EXPECT_THROW(memsim::platform_by_name("knl"), std::invalid_argument);
}

TEST(HierarchyModel, IvyBridgeGeometry) {
  const auto spec = memsim::ivybridge();
  ASSERT_EQ(spec.private_levels.size(), 2u);
  EXPECT_EQ(spec.private_levels[0].size_bytes, 64u * 1024);
  EXPECT_EQ(spec.private_levels[1].size_bytes, 256u * 1024);
  ASSERT_TRUE(spec.shared_llc.has_value());
  EXPECT_GE(spec.shared_llc->size_bytes, 30ull * 1024 * 1024);
  const auto mic = memsim::mic_knc();
  EXPECT_FALSE(mic.shared_llc.has_value());
  EXPECT_EQ(mic.private_levels[1].size_bytes, 512u * 1024);
}

TEST(HierarchyModel, ModeledCyclesFollowServiceLevel) {
  Hierarchy h(memsim::tiny_test_platform(), 2);
  const auto& spec = h.spec();
  const std::uint64_t l1 = spec.private_levels[0].hit_latency;
  const std::uint64_t l2 = spec.private_levels[1].hit_latency;
  const std::uint64_t l3 = spec.shared_llc->hit_latency;
  const std::uint64_t mem = spec.memory_latency;
  h.access(0, 0x1000, 4);  // cold: misses all levels
  EXPECT_EQ(h.modeled_cycles(0), l1 + l2 + l3 + mem);
  h.access(0, 0x1000, 4);  // L1 hit
  EXPECT_EQ(h.modeled_cycles(0), (l1 + l2 + l3 + mem) + l1);
  h.access(1, 0x1000, 4);  // other thread: private misses, shared LLC hit
  EXPECT_EQ(h.modeled_cycles(1), l1 + l2 + l3);
  EXPECT_EQ(h.modeled_cycles_max(), h.modeled_cycles(0));
  EXPECT_EQ(h.modeled_cycles_total(), h.modeled_cycles(0) + h.modeled_cycles(1));
  h.reset_stats();
  EXPECT_EQ(h.modeled_cycles_total(), 0u);
}

TEST(HierarchyModel, ScaledShrinksCapacitiesPreservingShape) {
  const auto spec = memsim::scaled(memsim::ivybridge(), 16);
  EXPECT_EQ(spec.private_levels[0].size_bytes, 4u * 1024);
  EXPECT_EQ(spec.private_levels[1].size_bytes, 16u * 1024);
  EXPECT_EQ(spec.shared_llc->size_bytes, 2ull * 1024 * 1024);
  EXPECT_EQ(spec.private_levels[0].line_bytes, 64u);
  EXPECT_EQ(spec.private_levels[0].associativity, 8u);
  // Still constructible (set counts remain powers of two).
  EXPECT_NO_THROW(Hierarchy(spec, 2));
}

TEST(HierarchyModel, ScaledClampsToOneSet) {
  // 64 KB L1 / 8-way / 64 B lines has 128 sets; dividing by 1024 would go
  // below one set, so it clamps to line*assoc = 512 bytes.
  const auto spec = memsim::scaled(memsim::ivybridge(), 1024);
  EXPECT_EQ(spec.private_levels[0].size_bytes, 512u);
  EXPECT_NO_THROW(Hierarchy(spec, 1));
}

TEST(HierarchyModel, ScaledRejectsNonPow2AndKeepsIdentity) {
  EXPECT_THROW(memsim::scaled(memsim::ivybridge(), 3), std::invalid_argument);
  EXPECT_THROW(memsim::scaled(memsim::ivybridge(), 0), std::invalid_argument);
  const auto same = memsim::scaled(memsim::ivybridge(), 1);
  EXPECT_EQ(same.name, "ivybridge");
  EXPECT_EQ(same.private_levels[1].size_bytes, 256u * 1024);
}

TEST(HierarchyModel, RejectsInvalidConstruction) {
  EXPECT_THROW(Hierarchy(memsim::tiny_test_platform(), 0), std::invalid_argument);
  PlatformSpec empty;
  empty.name = "empty";
  EXPECT_THROW(Hierarchy(empty, 1), std::invalid_argument);
  PlatformSpec mixed = memsim::tiny_test_platform();
  mixed.shared_llc->line_bytes = 128;
  EXPECT_THROW(Hierarchy(mixed, 1), std::invalid_argument);
}

TEST(HierarchyModel, ResetStatsKeepsWarmContents) {
  Hierarchy h(memsim::tiny_test_platform(), 1);
  h.access(0, 0x1000, 4);
  h.reset_stats();
  h.access(0, 0x1000, 4);
  EXPECT_EQ(h.level_stats()[0].stats.misses, 0u);
  EXPECT_EQ(h.memory_fills(), 0u);
  h.reset();
  h.access(0, 0x1000, 4);
  EXPECT_EQ(h.level_stats()[0].stats.misses, 1u);
}

TEST(HierarchyModel, DeterministicReplay) {
  auto run = [] {
    Hierarchy h(memsim::tiny_test_platform(), 4);
    std::mt19937 rng(99);
    for (int n = 0; n < 20000; ++n) {
      h.access(rng() % 4, (rng() % (1 << 16)), 4);
    }
    return std::make_pair(h.counter("PAPI_L3_TCA"), h.memory_fills());
  };
  EXPECT_EQ(run(), run());
}

// ---------------------------------------------------------------------------
// Prefetcher model
// ---------------------------------------------------------------------------

TEST(Prefetch, InstallDoesNotTouchDemandStats) {
  Cache c(CacheConfig{"t", 1024, 64, 2});
  c.install(7);
  EXPECT_EQ(c.stats().accesses, 0u);
  EXPECT_EQ(c.stats().misses, 0u);
  EXPECT_EQ(c.stats().prefetch_installs, 1u);
  EXPECT_TRUE(c.contains(7));
  c.install(7);  // already resident: no double install
  EXPECT_EQ(c.stats().prefetch_installs, 1u);
}

TEST(Prefetch, NextLineTurnsStreamMissesIntoHits) {
  auto spec = memsim::tiny_test_platform();
  auto count_l2_misses = [&](bool prefetch) {
    spec.prefetch_next_line = prefetch;
    Hierarchy h(spec, 1);
    // Unit-stride line stream: the prefetcher's best case.
    for (std::uint64_t line = 0; line < 256; ++line) {
      h.access(0, line * 64, 4);
    }
    return h.level_stats()[1].stats.misses;
  };
  const auto demand_only = count_l2_misses(false);
  const auto with_prefetch = count_l2_misses(true);
  EXPECT_EQ(demand_only, 256u);
  // Every other miss is absorbed: the L1 still misses but L2 holds the
  // prefetched next line.
  EXPECT_LE(with_prefetch, demand_only / 2 + 1);
}

TEST(Prefetch, UselessForLargeStrides) {
  auto spec = memsim::tiny_test_platform();
  auto fills = [&](bool prefetch) {
    spec.prefetch_next_line = prefetch;
    Hierarchy h(spec, 1);
    // 4 KiB strides: the against-the-grain pattern. Next-line prefetch
    // fetches lines that are never used.
    for (std::uint64_t n = 0; n < 256; ++n) {
      h.access(0, n * 4096, 4);
    }
    return h.memory_fills();
  };
  EXPECT_EQ(fills(true), fills(false));
}

// ---------------------------------------------------------------------------
// Integration with TracedView: the paper's locality claim in miniature
// ---------------------------------------------------------------------------

TEST(HierarchyIntegration, TracedGridSweepProducesExpectedColdMisses) {
  // Array-order x-sweep over 64 floats = 4 lines = 4 cold misses.
  core::Grid3D<float, core::ArrayOrderLayout> g(core::Extents3D{64, 1, 1});
  Hierarchy h(memsim::tiny_test_platform(), 1);
  auto sink = h.sink(0);
  const core::TracedView view(g, sink);
  for (std::uint32_t i = 0; i < 64; ++i) {
    (void)view.at(i, 0, 0);
  }
  EXPECT_EQ(h.level_stats()[0].stats.accesses, 64u);
  EXPECT_EQ(h.memory_fills(), 4u);
}

TEST(HierarchyIntegration, AgainstTheGrainSweepFavoursZOrder) {
  // The paper's core effect, miniaturized: sweep a 32^3 volume in zyx order
  // (z innermost — worst case for array order). The Z-order copy must
  // produce fewer fills from beyond the tiny L2 than the array-order copy.
  const core::Extents3D e = core::Extents3D::cube(32);
  core::Grid3D<float, core::ArrayOrderLayout> ga(e);
  core::Grid3D<float, core::ZOrderLayout> gz(e);

  auto sweep = [&](const auto& grid) {
    Hierarchy h(memsim::tiny_test_platform(), 1);
    auto sink = h.sink(0);
    const core::TracedView view(grid, sink);
    for (std::uint32_t i = 0; i < e.nx; ++i) {
      for (std::uint32_t j = 0; j < e.ny; ++j) {
        for (std::uint32_t k = 0; k < e.nz; ++k) {
          (void)view.at(i, j, k);
        }
      }
    }
    return h.counter("L2_DATA_READ_MISS_MEM_FILL");
  };

  const auto fills_array = sweep(ga);
  const auto fills_z = sweep(gz);
  // Every z-step under array order jumps nx*ny*4 = 4 KiB, so each access
  // misses the tiny L2 (32768 fills). Under Z-order consecutive z share a
  // line half the time: at most half the fills.
  EXPECT_LE(fills_z * 2, fills_array)
      << "z-order=" << fills_z << " array=" << fills_array;
}

// ---------------------------------------------------------------------------
// TLB model
// ---------------------------------------------------------------------------

TEST(Tlb, DisabledByDefaultInTinyPlatform) {
  Hierarchy h(memsim::tiny_test_platform(), 1);
  h.access(0, 0x1000, 4);
  EXPECT_EQ(h.tlb_stats().accesses, 0u);
  EXPECT_THROW((void)h.counter("DTLB_MISS"), std::out_of_range);
}

TEST(Tlb, PageLocalityIsCaptured) {
  auto spec = memsim::tiny_test_platform();
  spec.tlb_entries = 4;
  Hierarchy h(spec, 1);
  // 16 accesses within one page: 1 TLB miss.
  for (int a = 0; a < 16; ++a) {
    h.access(0, 0x10000 + 256 * static_cast<std::uint64_t>(a), 4);
  }
  EXPECT_EQ(h.counter("DTLB_MISS"), 1u);
  // 16 accesses striding pages: 16 misses once the 4-entry TLB overflows.
  Hierarchy h2(spec, 1);
  for (int a = 0; a < 16; ++a) {
    h2.access(0, 4096ull * static_cast<std::uint64_t>(a) * 2, 4);
  }
  EXPECT_EQ(h2.counter("DTLB_MISS"), 16u);
}

TEST(Tlb, ReachIsEntriesTimesPageSize) {
  auto spec = memsim::tiny_test_platform();
  spec.tlb_entries = 4;
  Hierarchy h(spec, 1);
  // Working set of exactly 4 pages: only cold misses across repeats.
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t page = 0; page < 4; ++page) {
      h.access(0, page * 4096, 4);
    }
  }
  EXPECT_EQ(h.counter("DTLB_MISS"), 4u);
  // 5 pages cycled with a 4-entry LRU TLB: every access misses.
  Hierarchy h2(spec, 1);
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t page = 0; page < 5; ++page) {
      h2.access(0, page * 4096, 4);
    }
  }
  EXPECT_EQ(h2.counter("DTLB_MISS"), 15u);
}

TEST(Tlb, MissAddsPageWalkLatency) {
  auto spec = memsim::tiny_test_platform();
  spec.tlb_entries = 4;
  spec.tlb_miss_latency = 30;
  Hierarchy with_tlb(spec, 1);
  with_tlb.access(0, 0x5000, 4);
  Hierarchy without(memsim::tiny_test_platform(), 1);
  without.access(0, 0x5000, 4);
  EXPECT_EQ(with_tlb.modeled_cycles(0), without.modeled_cycles(0) + 30);
}

TEST(Tlb, EnabledOnPaperPlatformsAndScaled) {
  EXPECT_EQ(memsim::ivybridge().tlb_entries, 64u);
  EXPECT_EQ(memsim::mic_knc().tlb_entries, 64u);
  EXPECT_EQ(memsim::scaled(memsim::ivybridge(), 16).tlb_entries, 8u);
  EXPECT_EQ(memsim::scaled(memsim::ivybridge(), 64).tlb_entries, 8u);  // floor
  Hierarchy h(memsim::ivybridge(), 2);
  h.access(0, 0x1000, 4);
  EXPECT_EQ(h.counter("DTLB_MISS"), 1u);
}

TEST(Tlb, AgainstTheGrainSweepThrashesTlbOnlyUnderArrayOrder) {
  // 32^3 floats: a z-innermost sweep under array order touches a new 4 KB
  // page every step (plane = 4 KB); under Z-order consecutive steps stay
  // inside compact bricks.
  auto spec = memsim::tiny_test_platform();
  spec.tlb_entries = 8;
  const core::Extents3D e = core::Extents3D::cube(32);
  core::Grid3D<float, core::ArrayOrderLayout> ga(e);
  core::Grid3D<float, core::ZOrderLayout> gz(e);
  auto sweep = [&](const auto& grid) {
    Hierarchy h(spec, 1);
    auto sink = h.sink(0);
    const core::TracedView view(grid, sink);
    for (std::uint32_t i = 0; i < e.nx; ++i) {
      for (std::uint32_t j = 0; j < e.ny; ++j) {
        for (std::uint32_t k = 0; k < e.nz; ++k) {
          (void)view.at(i, j, k);
        }
      }
    }
    return h.counter("DTLB_MISS");
  };
  EXPECT_LT(sweep(gz) * 4, sweep(ga));
}
