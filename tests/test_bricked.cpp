// Out-of-core bricked backend: SFC neighbour-finding on the brick grid,
// the LRU stream cache, and the fault-injection paths of
// core/brick_file.hpp + core/bricked.hpp.
//
// Three contracts pinned here:
//  * brick-grid hops via morton_step_* / morton_inc_* agree with the
//    decode-recompute oracle on pow2, non-pow2, and anisotropic grids,
//    including the 21-bit coordinate boundary;
//  * the stream cache evicts least-recently-used, never evicts a pinned
//    brick (overflow instead), counts hits/misses into the metrics
//    registry via exec::publish_brick_cache_metrics, and degrades — with
//    a recorded reason — rather than failing on an impossible budget;
//  * corrupt files are reported errors at open(), and IO failures after
//    open yield zeroed data plus a sticky io_error, never a crash.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "sfcvis/core/brick_file.hpp"
#include "sfcvis/core/bricked.hpp"
#include "sfcvis/core/morton.hpp"
#include "sfcvis/core/volume.hpp"
#include "sfcvis/exec/execution_context.hpp"
#include "sfcvis/filters/gradient.hpp"
#include "sfcvis/trace/trace.hpp"

namespace {

using namespace sfcvis;
using core::AnyVolume;
using core::BrickedVolume;
using core::BrickFileInfo;
using core::BrickOpenOptions;
using core::BrickPackOptions;
using core::Extents3D;
using core::LayoutKind;

float field(std::uint32_t i, std::uint32_t j, std::uint32_t k) {
  return static_cast<float>(i) * 1.0f + static_cast<float>(j) * 0.015625f -
         static_cast<float>(k) * 3.5f;
}

AnyVolume make_source(const Extents3D& e) {
  AnyVolume v = core::make_volume(LayoutKind::kArray, e);
  v.fill_from(field);
  return v;
}

/// Packs `extents` into a fresh temp brick file; removes it on scope exit.
struct TempBrickFile {
  std::filesystem::path path;
  BrickFileInfo info;

  TempBrickFile(const Extents3D& extents, const BrickPackOptions& opts) {
    static int serial = 0;
    path = std::filesystem::temp_directory_path() /
           ("sfcvis_test_bricked_" + std::to_string(::getpid()) + "_" +
            std::to_string(serial++) + ".sfcbrk");
    info = core::pack_brick_file(path.string(), make_source(extents), opts);
  }
  ~TempBrickFile() {
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
  TempBrickFile(const TempBrickFile&) = delete;
  TempBrickFile& operator=(const TempBrickFile&) = delete;

  [[nodiscard]] std::string str() const { return path.string(); }
};

/// Overwrites `len` bytes at `offset` of an existing file.
void poke_bytes(const std::filesystem::path& p, std::uint64_t offset,
                const void* bytes, std::size_t len) {
  std::fstream f(p, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.good());
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(static_cast<const char*>(bytes), static_cast<std::streamsize>(len));
  ASSERT_TRUE(f.good());
}

void poke_u32(const std::filesystem::path& p, std::uint64_t offset, std::uint32_t v) {
  poke_bytes(p, offset, &v, sizeof(v));
}

// ---------------------------------------------------------------------------
// Satellite: SFC neighbour-finding on the brick grid
// ---------------------------------------------------------------------------

TEST(BrickNeighborFinding, StepMatchesDecodeRecomputeOracle) {
  // Brick-grid shapes a bricked volume actually produces: pow2 cube,
  // non-pow2 cube, strongly anisotropic. Every in-range hop of |d| <= 3
  // along every axis must agree with encode(decode(m) + d).
  const Extents3D grids[] = {{8, 8, 8}, {5, 7, 3}, {33, 4, 17}};
  for (const Extents3D& g : grids) {
    for (std::uint32_t z = 0; z < g.nz; ++z) {
      for (std::uint32_t y = 0; y < g.ny; ++y) {
        for (std::uint32_t x = 0; x < g.nx; ++x) {
          const std::uint64_t m = core::morton_encode_3d(x, y, z);
          for (std::int32_t d = -3; d <= 3; ++d) {
            const std::int64_t tx = static_cast<std::int64_t>(x) + d;
            const std::int64_t ty = static_cast<std::int64_t>(y) + d;
            const std::int64_t tz = static_cast<std::int64_t>(z) + d;
            if (tx >= 0 && tx < static_cast<std::int64_t>(g.nx)) {
              EXPECT_EQ(core::morton_step_x(m, d),
                        core::morton_encode_3d(static_cast<std::uint32_t>(tx), y, z))
                  << "x step " << d << " from (" << x << "," << y << "," << z << ")";
            }
            if (ty >= 0 && ty < static_cast<std::int64_t>(g.ny)) {
              EXPECT_EQ(core::morton_step_y(m, d),
                        core::morton_encode_3d(x, static_cast<std::uint32_t>(ty), z));
            }
            if (tz >= 0 && tz < static_cast<std::int64_t>(g.nz)) {
              EXPECT_EQ(core::morton_step_z(m, d),
                        core::morton_encode_3d(x, y, static_cast<std::uint32_t>(tz)));
            }
          }
        }
      }
    }
  }
}

TEST(BrickNeighborFinding, IncDecAgreeWithUnitSteps) {
  for (std::uint32_t x = 0; x < 6; ++x) {
    for (std::uint32_t y = 0; y < 6; ++y) {
      for (std::uint32_t z = 0; z < 6; ++z) {
        const std::uint64_t m = core::morton_encode_3d(x, y, z);
        EXPECT_EQ(core::morton_inc_x(m), core::morton_step_x(m, 1));
        EXPECT_EQ(core::morton_inc_y(m), core::morton_step_y(m, 1));
        EXPECT_EQ(core::morton_inc_z(m), core::morton_step_z(m, 1));
        if (x > 0) {
          EXPECT_EQ(core::morton_dec_x(m), core::morton_step_x(m, -1));
        }
        if (y > 0) {
          EXPECT_EQ(core::morton_dec_y(m), core::morton_step_y(m, -1));
        }
        if (z > 0) {
          EXPECT_EQ(core::morton_dec_z(m), core::morton_step_z(m, -1));
        }
      }
    }
  }
}

TEST(BrickNeighborFinding, TwentyOneBitBoundary) {
  // Axis arithmetic is modulo 2^21 (kMortonMaxBits3D); hops at the top of
  // the coordinate range must ripple correctly and wrap as documented.
  const std::uint32_t max = (1u << core::kMortonMaxBits3D) - 1;
  const std::uint64_t m = core::morton_encode_3d(max, 5, 9);
  EXPECT_EQ(core::morton_decode_3d(m), (core::MortonCoord3D{max, 5, 9}));
  EXPECT_EQ(core::morton_step_x(m, -1), core::morton_encode_3d(max - 1, 5, 9));
  // +1 from the max coordinate wraps that axis to 0, other axes untouched.
  EXPECT_EQ(core::morton_step_x(m, 1), core::morton_encode_3d(0, 5, 9));
  // ...and wraps back.
  EXPECT_EQ(core::morton_step_x(core::morton_encode_3d(0, 5, 9), -1), m);
  // A carry that ripples across every x bit: 0x0fffff + 1.
  const std::uint32_t half = (1u << 20) - 1;
  EXPECT_EQ(core::morton_step_x(core::morton_encode_3d(half, max, max), 1),
            core::morton_encode_3d(half + 1, max, max));
  // Large |d| in one hop, near the boundary.
  EXPECT_EQ(core::morton_step_y(core::morton_encode_3d(3, max - 7, 11), 7),
            core::morton_encode_3d(3, max, 11));
  EXPECT_EQ(core::morton_step_z(core::morton_encode_3d(3, 11, max), -1000),
            core::morton_encode_3d(3, 11, max - 1000));
}

TEST(BrickNeighborFinding, ViewCrossesBrickBoundariesEveryDirection) {
  // 20^3 at edge 8 -> a 3^3 non-pow2 brick grid. A serpentine walk and an
  // explicit +-x/+-y/+-z boundary-straddling stencil must both read the
  // source field exactly, through a streaming cache smaller than the
  // working set (so hops also exercise eviction + reload).
  const Extents3D e{20, 20, 20};
  BrickPackOptions popts;
  popts.brick_edge = 8;
  popts.inner_kind = LayoutKind::kZOrder;
  TempBrickFile file(e, popts);

  BrickOpenOptions oopts;
  oopts.force_stream = true;
  oopts.cache_bytes = 3 * file.info.brick_bytes();  // 27-brick grid, 3 slots
  const BrickedVolume vol = BrickedVolume::open(file.str(), oopts);
  const auto view = core::make_read_view(vol);

  for (std::uint32_t k = 0; k < e.nz; ++k) {
    for (std::uint32_t j = 0; j < e.ny; ++j) {
      const bool rev = ((j + k) & 1u) != 0;
      for (std::uint32_t n = 0; n < e.nx; ++n) {
        const std::uint32_t i = rev ? e.nx - 1 - n : n;
        ASSERT_EQ(view.at(i, j, k), field(i, j, k)) << i << "," << j << "," << k;
      }
    }
  }
  // Stencil taps that straddle the brick seam at 8 and 16 in each axis.
  for (const std::uint32_t c : {7u, 8u, 15u, 16u}) {
    EXPECT_EQ(view.at(c, 10, 10), field(c, 10, 10));
    EXPECT_EQ(view.at(10, c, 10), field(10, c, 10));
    EXPECT_EQ(view.at(10, 10, c), field(10, 10, c));
  }
  // Clamped accesses outside the volume hit the boundary voxel.
  EXPECT_EQ(view.at_clamped(-3, 5, 5), field(0, 5, 5));
  EXPECT_EQ(view.at_clamped(25, 5, 5), field(19, 5, 5));
  EXPECT_EQ(view.at_clamped(5, -1, 30), field(5, 0, 19));
}

TEST(BrickNeighborFinding, GatherRowHopsBricksOnAnisotropicGrid) {
  // 40x8x24 at edge 8 -> a 5x1x3 brick grid; rows along every axis cross
  // multiple bricks via the morton_inc_* hop in gather_row.
  const Extents3D e{40, 8, 24};
  BrickPackOptions popts;
  popts.brick_edge = 8;
  popts.inner_kind = LayoutKind::kTiled;
  popts.inner_tile = 4;
  TempBrickFile file(e, popts);
  const BrickedVolume vol = BrickedVolume::open(file.str());

  std::vector<float> row(40);
  core::gather_row(vol, core::Axis3::kX, 0, 3, 9, e.nx, row.data());
  for (std::uint32_t i = 0; i < e.nx; ++i) {
    ASSERT_EQ(row[i], field(i, 3, 9)) << "x row at " << i;
  }
  core::gather_row(vol, core::Axis3::kY, 17, 0, 21, e.ny, row.data());
  for (std::uint32_t j = 0; j < e.ny; ++j) {
    ASSERT_EQ(row[j], field(17, j, 21)) << "y row at " << j;
  }
  core::gather_row(vol, core::Axis3::kZ, 33, 5, 0, e.nz, row.data());
  for (std::uint32_t k = 0; k < e.nz; ++k) {
    ASSERT_EQ(row[k], field(33, 5, k)) << "z row at " << k;
  }
}

// ---------------------------------------------------------------------------
// Pack / open round trip
// ---------------------------------------------------------------------------

TEST(BrickFile, RoundTripsBitIdenticalAcrossInnerLayouts) {
  const Extents3D shapes[] = {{16, 16, 16}, {20, 12, 9}};
  struct Inner {
    LayoutKind kind;
    const char* interleave;
  };
  const Inner inners[] = {{LayoutKind::kArray, ""},
                          {LayoutKind::kZOrder, ""},
                          {LayoutKind::kTiled, ""},
                          {LayoutKind::kHilbert, ""},
                          {LayoutKind::kGMorton, "zyxzyxzxyxyz"}};
  for (const Extents3D& e : shapes) {
    for (const Inner& inner : inners) {
      BrickPackOptions popts;
      popts.brick_edge = 16;
      popts.inner_kind = inner.kind;
      popts.inner_tile = 4;
      popts.interleave = inner.interleave;
      TempBrickFile file(e, popts);
      const BrickedVolume vol = BrickedVolume::open(file.str());
      ASSERT_EQ(vol.extents().nx, e.nx);
      const auto view = core::make_read_view(vol);
      for (std::uint32_t k = 0; k < e.nz; ++k) {
        for (std::uint32_t j = 0; j < e.ny; ++j) {
          for (std::uint32_t i = 0; i < e.nx; ++i) {
            ASSERT_EQ(view.at(i, j, k), field(i, j, k))
                << core::to_string(inner.kind) << " " << e.nx << "x" << e.ny << "x"
                << e.nz << " at " << i << "," << j << "," << k;
          }
        }
      }
    }
  }
}

TEST(BrickFile, HeaderRoundTripsThroughReader) {
  BrickPackOptions popts;
  popts.brick_edge = 8;
  popts.inner_kind = LayoutKind::kGMorton;
  popts.interleave = "zyxzyxzyx";
  TempBrickFile file({20, 12, 9}, popts);
  const BrickFileInfo read = core::read_brick_file_header(file.str());
  EXPECT_EQ(read.extents.nx, 20u);
  EXPECT_EQ(read.extents.ny, 12u);
  EXPECT_EQ(read.extents.nz, 9u);
  EXPECT_EQ(read.brick_edge, 8u);
  EXPECT_EQ(read.inner_kind, LayoutKind::kGMorton);
  EXPECT_EQ(read.interleave, "zyxzyxzyx");
  EXPECT_EQ(read.brick_count, file.info.brick_count);
  EXPECT_EQ(read.expected_file_size(), std::filesystem::file_size(file.path));
}

TEST(BrickFile, PackRejectsImpossibleOptions) {
  const AnyVolume src = make_source({8, 8, 8});
  const auto tmp = (std::filesystem::temp_directory_path() / "sfcvis_reject.sfcbrk").string();
  BrickPackOptions bad_edge;
  bad_edge.brick_edge = 12;  // not a power of two
  EXPECT_THROW((void)core::pack_brick_file(tmp, src, bad_edge), std::invalid_argument);
  BrickPackOptions bad_inner;
  bad_inner.inner_kind = LayoutKind::kBricked;  // bricks of bricks
  EXPECT_THROW((void)core::pack_brick_file(tmp, src, bad_inner), std::invalid_argument);
  std::error_code ec;
  std::filesystem::remove(tmp, ec);
}

// ---------------------------------------------------------------------------
// Satellite: LRU stream cache
// ---------------------------------------------------------------------------

// 16x16x8 at edge 8 -> a 2x2x1 brick grid: codes 0, 1, 2, 3.
BrickPackOptions four_brick_opts() {
  BrickPackOptions popts;
  popts.brick_edge = 8;
  popts.inner_kind = LayoutKind::kZOrder;
  return popts;
}

TEST(BrickLruCache, EvictsLeastRecentlyUsed) {
  TempBrickFile file({16, 16, 8}, four_brick_opts());
  BrickOpenOptions oopts;
  oopts.force_stream = true;
  oopts.cache_bytes = 2 * file.info.brick_bytes();  // two slots
  const BrickedVolume vol = BrickedVolume::open(file.str(), oopts);

  const auto touch = [&](std::uint64_t code) {
    const BrickedVolume::BrickRef ref = vol.acquire_brick(code);
    vol.release_brick(ref.slot);
  };
  touch(0);
  touch(1);
  touch(3);  // full; 0 is least recent -> evicted
  touch(1);  // refresh 1 so 3 is now least recent
  touch(2);  // -> evicts 3, not 1

  const core::BrickCacheReport rep = vol.cache_report();
  EXPECT_EQ(rep.slot_count, 2u);
  EXPECT_FALSE(rep.mmapped);
  ASSERT_EQ(rep.eviction_log.size(), 2u);
  EXPECT_EQ(rep.eviction_log[0], 0u);
  EXPECT_EQ(rep.eviction_log[1], 3u);
  EXPECT_EQ(rep.evictions, 2u);
}

TEST(BrickLruCache, PinnedBricksOverflowInsteadOfEvicting) {
  TempBrickFile file({16, 16, 8}, four_brick_opts());
  BrickOpenOptions oopts;
  oopts.force_stream = true;
  oopts.cache_bytes = file.info.brick_bytes();  // one slot
  const BrickedVolume vol = BrickedVolume::open(file.str(), oopts);

  // Hold the only slot pinned, then demand a different brick: the load
  // must succeed out-of-arena and the pinned data must stay valid.
  const BrickedVolume::BrickRef a = vol.acquire_brick(0);
  ASSERT_NE(a.data, nullptr);
  const float a_first = a.data[0];
  const BrickedVolume::BrickRef b = vol.acquire_brick(3);
  ASSERT_NE(b.data, nullptr);
  EXPECT_NE(a.data, b.data);
  EXPECT_EQ(a.data[0], a_first);  // pin survived the second load

  const core::BrickCacheReport rep = vol.cache_report();
  EXPECT_GE(rep.overflow_bricks, 1u);
  EXPECT_TRUE(rep.eviction_log.empty());  // nothing was evicted

  vol.release_brick(b.slot);
  vol.release_brick(a.slot);
}

TEST(BrickLruCache, HitMissCountersReachMetricsRegistry) {
  auto& tracer = trace::Tracer::instance();
  tracer.reset_metrics();

  TempBrickFile file({16, 16, 8}, four_brick_opts());
  BrickOpenOptions oopts;
  oopts.force_stream = true;
  oopts.cache_bytes = file.info.brick_bytes();  // one slot
  const BrickedVolume vol = BrickedVolume::open(file.str(), oopts);

  const auto touch = [&](std::uint64_t code) {
    const BrickedVolume::BrickRef ref = vol.acquire_brick(code);
    vol.release_brick(ref.slot);
  };
  touch(0);  // miss
  touch(0);  // hit
  touch(1);  // miss (+ evict 0)

  const core::BrickCacheReport delta = exec::publish_brick_cache_metrics(vol);
  EXPECT_EQ(delta.hits, 1u);
  EXPECT_EQ(delta.misses, 2u);
  EXPECT_EQ(delta.evictions, 1u);

  const trace::MetricsSnapshot snap = tracer.metrics_snapshot();
  EXPECT_EQ(snap.total("bricked.cache_hit"), 1u);
  EXPECT_EQ(snap.total("bricked.cache_miss"), 2u);
  EXPECT_EQ(snap.total("bricked.evictions"), 1u);

  // The publisher drains deltas: publishing again adds nothing.
  const core::BrickCacheReport again = exec::publish_brick_cache_metrics(vol);
  EXPECT_EQ(again.hits, 0u);
  EXPECT_EQ(again.misses, 0u);
  EXPECT_EQ(tracer.metrics_snapshot().total("bricked.cache_miss"), 2u);
  tracer.reset_metrics();
}

TEST(BrickLruCache, BudgetBelowOneBrickDegradesWithReason) {
  TempBrickFile file({16, 16, 8}, four_brick_opts());
  BrickOpenOptions oopts;
  oopts.force_stream = true;
  oopts.cache_bytes = 7;  // far below one brick
  const BrickedVolume vol = BrickedVolume::open(file.str(), oopts);

  const core::BrickCacheReport rep = vol.cache_report();
  EXPECT_EQ(rep.slot_count, 1u);  // degraded to the one-slot minimum
  EXPECT_FALSE(rep.degrade.empty());

  // ...and it still reads correctly.
  const auto view = core::make_read_view(vol);
  EXPECT_EQ(view.at(0, 0, 0), field(0, 0, 0));
  EXPECT_EQ(view.at(15, 15, 7), field(15, 15, 7));
}

TEST(BrickLruCache, MmapModeUsesNoSlots) {
  TempBrickFile file({16, 16, 8}, four_brick_opts());
  const BrickedVolume vol = BrickedVolume::open(file.str());
  if (!vol.mmapped()) {
    // The OS refused the mapping: the degrade reason must say so.
    EXPECT_FALSE(vol.cache_report().degrade.empty());
    return;
  }
  const core::BrickCacheReport rep = vol.cache_report();
  EXPECT_EQ(rep.slot_count, 0u);
  EXPECT_TRUE(rep.mmapped);
  const auto view = core::make_read_view(vol);
  EXPECT_EQ(view.at(9, 14, 3), field(9, 14, 3));
}

// ---------------------------------------------------------------------------
// Satellite: fault injection
// ---------------------------------------------------------------------------

TEST(BrickFaultInjection, MissingFileThrows) {
  EXPECT_THROW((void)BrickedVolume::open("/nonexistent/no_such.sfcbrk"),
               std::runtime_error);
  EXPECT_THROW((void)core::read_brick_file_header("/nonexistent/no_such.sfcbrk"),
               std::runtime_error);
}

TEST(BrickFaultInjection, TruncatedFileRejectedAtOpen) {
  TempBrickFile file({16, 16, 8}, four_brick_opts());
  std::filesystem::resize_file(file.path, file.info.expected_file_size() - 4);
  EXPECT_THROW((void)core::read_brick_file_header(file.str()), std::runtime_error);
  EXPECT_THROW((void)BrickedVolume::open(file.str()), std::runtime_error);
}

TEST(BrickFaultInjection, OversizedFileRejectedAtOpen) {
  TempBrickFile file({16, 16, 8}, four_brick_opts());
  std::filesystem::resize_file(file.path, file.info.expected_file_size() + 64);
  EXPECT_THROW((void)BrickedVolume::open(file.str()), std::runtime_error);
}

TEST(BrickFaultInjection, CorruptMagicRejected) {
  TempBrickFile file({16, 16, 8}, four_brick_opts());
  poke_bytes(file.path, 0, "XFCBRK01", 8);
  EXPECT_THROW((void)BrickedVolume::open(file.str()), std::runtime_error);
}

TEST(BrickFaultInjection, CorruptHeaderFieldsRejected) {
  {
    TempBrickFile file({16, 16, 8}, four_brick_opts());
    poke_u32(file.path, 8, 99);  // unknown version
    EXPECT_THROW((void)BrickedVolume::open(file.str()), std::runtime_error);
  }
  {
    TempBrickFile file({16, 16, 8}, four_brick_opts());
    poke_u32(file.path, 24, 12);  // non-pow2 brick edge
    EXPECT_THROW((void)BrickedVolume::open(file.str()), std::runtime_error);
  }
  {
    TempBrickFile file({16, 16, 8}, four_brick_opts());
    poke_u32(file.path, 28, 7);  // LayoutKind out of range
    EXPECT_THROW((void)BrickedVolume::open(file.str()), std::runtime_error);
  }
  {
    TempBrickFile file({16, 16, 8}, four_brick_opts());
    poke_u32(file.path, 12, 0);  // zero extent
    EXPECT_THROW((void)BrickedVolume::open(file.str()), std::runtime_error);
  }
}

TEST(BrickFaultInjection, ShortReadMidStreamIsReportedNotFatal) {
  TempBrickFile file({16, 16, 8}, four_brick_opts());
  BrickOpenOptions oopts;
  oopts.force_stream = true;
  oopts.cache_bytes = file.info.brick_bytes();  // one slot: every touch repreads
  const BrickedVolume vol = BrickedVolume::open(file.str(), oopts);

  // The file passes the open-time size check, then loses all but the
  // first brick — the disk lying to us mid-stream.
  const auto view0 = core::make_read_view(vol);
  EXPECT_EQ(view0.at(0, 0, 0), field(0, 0, 0));
  std::filesystem::resize_file(file.path,
                               file.info.payload_offset + file.info.brick_bytes());

  // A voxel in the now-missing last brick: zeroed data, sticky io_error,
  // no crash (and no dirty read of whatever was in the slot before).
  const auto view = core::make_read_view(vol);
  EXPECT_EQ(view.at(15, 15, 7), 0.0f);
  const core::BrickCacheReport rep = vol.cache_report();
  EXPECT_FALSE(rep.io_error.empty());
  // The first brick still reads fine afterwards.
  EXPECT_EQ(view.at(1, 2, 3), field(1, 2, 3));
}

// ---------------------------------------------------------------------------
// Facade + exec integration
// ---------------------------------------------------------------------------

TEST(BrickedFacade, KindParsesAndMakeVolumeRefuses) {
  EXPECT_STREQ(core::to_string(LayoutKind::kBricked), "bricked");
  EXPECT_EQ(core::parse_layout_kind("bricked"), LayoutKind::kBricked);
  // kAllLayoutKinds stays the in-core set: bricked volumes are opened from
  // a packed file, never allocated.
  for (const auto kind : core::kAllLayoutKinds) {
    EXPECT_NE(kind, LayoutKind::kBricked);
  }
  EXPECT_THROW((void)core::make_volume(LayoutKind::kBricked, {8, 8, 8}),
               std::invalid_argument);
}

TEST(BrickedFacade, AnyVolumeForwardsAndStaysReadOnly) {
  TempBrickFile file({16, 16, 8}, four_brick_opts());
  AnyVolume vol{BrickedVolume::open(file.str())};
  EXPECT_EQ(vol.kind(), LayoutKind::kBricked);
  EXPECT_STREQ(vol.layout_name(), "bricked");
  EXPECT_EQ(vol.extents().nx, 16u);
  EXPECT_EQ(vol.size(), std::size_t{16 * 16 * 8});
  EXPECT_EQ(vol.at(4, 9, 2), field(4, 9, 2));
  // data() is an identity sentinel, not element storage — but it must be
  // stable (StructureCache keys on it) and distinct per backend.
  EXPECT_NE(vol.data(), nullptr);
  EXPECT_EQ(vol.data(), vol.data());
  // Writes through the facade are a reported logic error.
  EXPECT_THROW(vol.fill_from([](auto, auto, auto) { return 0.0f; }), std::logic_error);

  // Reading out (layout conversion / copy) works: bricked is a source.
  const AnyVolume converted = vol.convert_to(LayoutKind::kZOrder);
  AnyVolume copied = core::make_volume(LayoutKind::kArray, vol.extents());
  copied.copy_from(vol);
  for (std::uint32_t k = 0; k < 8; ++k) {
    for (std::uint32_t j = 0; j < 16; ++j) {
      for (std::uint32_t i = 0; i < 16; ++i) {
        ASSERT_EQ(converted.at(i, j, k), field(i, j, k));
        ASSERT_EQ(copied.at(i, j, k), field(i, j, k));
      }
    }
  }
}

TEST(BrickedFacade, CacheSaltSeparatesBrickGeometries) {
  BrickPackOptions a = four_brick_opts();
  BrickPackOptions b = four_brick_opts();
  b.brick_edge = 16;
  TempBrickFile fa({16, 16, 8}, a);
  TempBrickFile fb({16, 16, 8}, b);
  const BrickedVolume va = BrickedVolume::open(fa.str());
  const BrickedVolume vb = BrickedVolume::open(fb.str());
  EXPECT_NE(core::volume_cache_salt(va), core::volume_cache_salt(vb));
}

TEST(BrickedExec, OpenBrickedHonorsMemoryPolicyAndKernelsMatch) {
  const Extents3D e{24, 20, 16};
  BrickPackOptions popts;
  popts.brick_edge = 8;
  popts.inner_kind = LayoutKind::kGMorton;
  popts.interleave = "zyxzyxzxy";
  TempBrickFile file(e, popts);

  exec::ExecOptions xopts;
  xopts.threads = 4;
  xopts.memory.brick_cache_bytes = 2 * file.info.brick_bytes();
  exec::ExecutionContext ctx(xopts);

  core::AnyVolume bricked = ctx.open_bricked(file.str());
  ASSERT_EQ(bricked.kind(), LayoutKind::kBricked);
  // brick_cache_bytes > 0 means stream mode, per the policy.
  EXPECT_FALSE(bricked.as_bricked().mmapped());
  EXPECT_EQ(bricked.as_bricked().cache_report().slot_count, 2u);

  // A multi-threaded kernel over the bricked source must be bit-identical
  // to the same kernel over the in-core source.
  const AnyVolume in_core = make_source(e);
  core::ArrayVolume out_bricked(e);
  core::ArrayVolume out_core(e);
  filters::gradient_magnitude(bricked, out_bricked, ctx);
  filters::gradient_magnitude(in_core, out_core, ctx);
  for (std::uint32_t k = 0; k < e.nz; ++k) {
    for (std::uint32_t j = 0; j < e.ny; ++j) {
      for (std::uint32_t i = 0; i < e.nx; ++i) {
        ASSERT_EQ(out_bricked.at(i, j, k), out_core.at(i, j, k))
            << i << "," << j << "," << k;
      }
    }
  }
  // The run generated cache traffic we can publish.
  const core::BrickCacheReport delta =
      exec::publish_brick_cache_metrics(bricked.as_bricked());
  EXPECT_GT(delta.misses, 0u);
}

}  // namespace
