// Tests for the Z-curve range-query machinery (BIGMIN/LITMAX) and the
// curve-order traversals built on it.
#include <gtest/gtest.h>

#include <random>
#include <set>
#include <vector>

#include "sfcvis/core/grid.hpp"
#include "sfcvis/core/zquery.hpp"

namespace core = sfcvis::core;

using core::Coord3D;
using core::Extents3D;

namespace {

/// Brute-force reference: all in-box codes greater than z, sorted.
std::uint64_t brute_bigmin(std::uint64_t z, const Coord3D& lo, const Coord3D& hi) {
  std::uint64_t best = ~std::uint64_t{0};
  for (std::uint32_t k = lo.k; k <= hi.k; ++k) {
    for (std::uint32_t j = lo.j; j <= hi.j; ++j) {
      for (std::uint32_t i = lo.i; i <= hi.i; ++i) {
        const auto code = core::morton_encode_3d(i, j, k);
        if (code > z && code < best) {
          best = code;
        }
      }
    }
  }
  return best;
}

std::uint64_t brute_litmax(std::uint64_t z, const Coord3D& lo, const Coord3D& hi) {
  std::uint64_t best = 0;
  for (std::uint32_t k = lo.k; k <= hi.k; ++k) {
    for (std::uint32_t j = lo.j; j <= hi.j; ++j) {
      for (std::uint32_t i = lo.i; i <= hi.i; ++i) {
        const auto code = core::morton_encode_3d(i, j, k);
        if (code < z && code > best) {
          best = code;
        }
      }
    }
  }
  return best;
}

}  // namespace

TEST(MortonInBox, BasicMembership) {
  const Coord3D lo{1, 2, 3}, hi{4, 5, 6};
  EXPECT_TRUE(core::morton_in_box_3d(core::morton_encode_3d(1, 2, 3), lo, hi));
  EXPECT_TRUE(core::morton_in_box_3d(core::morton_encode_3d(4, 5, 6), lo, hi));
  EXPECT_TRUE(core::morton_in_box_3d(core::morton_encode_3d(2, 3, 4), lo, hi));
  EXPECT_FALSE(core::morton_in_box_3d(core::morton_encode_3d(0, 2, 3), lo, hi));
  EXPECT_FALSE(core::morton_in_box_3d(core::morton_encode_3d(5, 5, 6), lo, hi));
  EXPECT_FALSE(core::morton_in_box_3d(core::morton_encode_3d(1, 2, 7), lo, hi));
}

TEST(BigMin, MatchesBruteForceOnRandomBoxes) {
  std::mt19937 rng(77);
  std::uniform_int_distribution<std::uint32_t> coord(0, 15);
  for (int trial = 0; trial < 200; ++trial) {
    Coord3D lo{coord(rng), coord(rng), coord(rng)};
    Coord3D hi{coord(rng), coord(rng), coord(rng)};
    if (hi.i < lo.i) std::swap(lo.i, hi.i);
    if (hi.j < lo.j) std::swap(lo.j, hi.j);
    if (hi.k < lo.k) std::swap(lo.k, hi.k);
    const auto zmin = core::morton_encode_3d(lo.i, lo.j, lo.k);
    const auto zmax = core::morton_encode_3d(hi.i, hi.j, hi.k);
    // Probe a handful of z positions strictly below zmax.
    std::uniform_int_distribution<std::uint64_t> zd(0, zmax == 0 ? 0 : zmax - 1);
    for (int probe = 0; probe < 10; ++probe) {
      const std::uint64_t z = zd(rng);
      const auto expected = brute_bigmin(z, lo, hi);
      if (expected == ~std::uint64_t{0}) {
        continue;  // nothing above z inside the box
      }
      EXPECT_EQ(core::morton_bigmin_3d(z, zmin, zmax), expected)
          << "z=" << z << " box=(" << lo.i << "," << lo.j << "," << lo.k << ")-(" << hi.i
          << "," << hi.j << "," << hi.k << ")";
    }
  }
}

TEST(LitMax, MatchesBruteForceOnRandomBoxes) {
  std::mt19937 rng(78);
  std::uniform_int_distribution<std::uint32_t> coord(0, 15);
  for (int trial = 0; trial < 200; ++trial) {
    Coord3D lo{coord(rng), coord(rng), coord(rng)};
    Coord3D hi{coord(rng), coord(rng), coord(rng)};
    if (hi.i < lo.i) std::swap(lo.i, hi.i);
    if (hi.j < lo.j) std::swap(lo.j, hi.j);
    if (hi.k < lo.k) std::swap(lo.k, hi.k);
    const auto zmin = core::morton_encode_3d(lo.i, lo.j, lo.k);
    const auto zmax = core::morton_encode_3d(hi.i, hi.j, hi.k);
    std::uniform_int_distribution<std::uint64_t> zd(zmin + 1, zmax + 64);
    for (int probe = 0; probe < 10; ++probe) {
      const std::uint64_t z = zd(rng);
      const auto expected = brute_litmax(z, lo, hi);
      if (expected == 0 && !core::morton_in_box_3d(0, lo, hi)) {
        continue;  // nothing below z inside the box
      }
      EXPECT_EQ(core::morton_litmax_3d(z, zmin, zmax), expected) << "z=" << z;
    }
  }
}

TEST(BigMin, SkipsDeadSegmentEfficiently) {
  // Classic example: box (1,1,*)..(3,3,*) on one plane; after code of
  // (3,1) the curve leaves the box for a long stretch.
  const Coord3D lo{1, 1, 0}, hi{3, 3, 0};
  const auto z = core::morton_encode_3d(3, 1, 0);
  const auto next = core::morton_bigmin_3d(z, core::morton_encode_3d(1, 1, 0),
                                           core::morton_encode_3d(3, 3, 0));
  const auto c = core::morton_decode_3d(next);
  EXPECT_TRUE(core::morton_in_box_3d(next, lo, hi));
  EXPECT_GT(next, z);
  // The next in-box point after (3,1,0) on the Z curve is (1,2,0).
  EXPECT_EQ(c, (core::MortonCoord3D{1, 2, 0}));
}

TEST(ForEachInBox, VisitsExactlyTheBoxInCurveOrder) {
  const Coord3D lo{2, 1, 3}, hi{9, 6, 5};
  std::vector<std::uint64_t> codes;
  std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> seen;
  core::for_each_morton_in_box(lo, hi, [&](std::uint64_t code, const Coord3D& c) {
    codes.push_back(code);
    seen.insert({c.i, c.j, c.k});
    EXPECT_TRUE(core::morton_in_box_3d(code, lo, hi));
  });
  const std::size_t expected_count =
      std::size_t(hi.i - lo.i + 1) * (hi.j - lo.j + 1) * (hi.k - lo.k + 1);
  EXPECT_EQ(codes.size(), expected_count);
  EXPECT_EQ(seen.size(), expected_count);
  EXPECT_TRUE(std::is_sorted(codes.begin(), codes.end()));
}

TEST(ForEachInBox, SinglePointBox) {
  int visits = 0;
  core::for_each_morton_in_box(Coord3D{5, 6, 7}, Coord3D{5, 6, 7},
                               [&](std::uint64_t code, const Coord3D& c) {
                                 ++visits;
                                 EXPECT_EQ(code, core::morton_encode_3d(5, 6, 7));
                                 EXPECT_EQ(c, (Coord3D{5, 6, 7}));
                               });
  EXPECT_EQ(visits, 1);
}

TEST(ForEachInBox, OriginCornerBox) {
  std::size_t visits = 0;
  core::for_each_morton_in_box(Coord3D{0, 0, 0}, Coord3D{7, 7, 7},
                               [&](std::uint64_t code, const Coord3D&) {
                                 EXPECT_EQ(code, visits);  // dense prefix of the curve
                                 ++visits;
                               });
  EXPECT_EQ(visits, 512u);
}

TEST(ForEachZOrder, CoversLogicalExtentsExactlyOnce) {
  for (const Extents3D e : {Extents3D{8, 8, 8}, Extents3D{5, 5, 5}, Extents3D{6, 3, 2},
                            Extents3D{16, 4, 1}}) {
    core::Grid3D<int, core::ArrayOrderLayout> cover(e);
    core::for_each_zorder(e, [&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
      ASSERT_TRUE(e.contains(i, j, k));
      cover.at(i, j, k) += 1;
    });
    cover.for_each_index([&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
      ASSERT_EQ(cover.at(i, j, k), 1) << e.nx << "x" << e.ny << "x" << e.nz;
    });
  }
}

TEST(ForEachZOrder, VisitsInMonotoneStorageOrder) {
  // On a Z-order grid the traversal must touch strictly increasing storage
  // offsets — the property that makes it the cache-optimal sweep.
  const Extents3D e{8, 8, 8};
  const core::ZOrderLayout layout(e);
  std::int64_t prev = -1;
  core::for_each_zorder(e, [&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    const auto idx = static_cast<std::int64_t>(layout.index(i, j, k));
    ASSERT_GT(idx, prev);
    prev = idx;
  });
}

TEST(ForEachZOrder, AnisotropicAlsoMonotone) {
  const Extents3D e{16, 4, 2};
  const core::ZOrderLayout layout(e);
  std::int64_t prev = -1;
  std::size_t count = 0;
  core::for_each_zorder(e, [&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    const auto idx = static_cast<std::int64_t>(layout.index(i, j, k));
    ASSERT_GT(idx, prev);
    prev = idx;
    ++count;
  });
  EXPECT_EQ(count, e.size());
}
