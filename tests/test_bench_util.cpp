// Tests for stats / tables / options, plus perfmon probing.
#include <gtest/gtest.h>

#include <cerrno>
#include <filesystem>
#include <fstream>
#include <thread>

#include "sfcvis/bench_util/options.hpp"
#include "sfcvis/bench_util/stats.hpp"
#include "sfcvis/bench_util/table.hpp"
#include "sfcvis/perfmon/perf_events.hpp"

namespace bench = sfcvis::bench_util;
namespace perfmon = sfcvis::perfmon;

// ---------------------------------------------------------------------------
// Scaled relative difference (Eq. 4)
// ---------------------------------------------------------------------------

TEST(ScaledRelDiff, MatchesPaperSemantics) {
  // ds = 0.1 means a is 10% larger than z; 1.0 means 100%; 10.0 means
  // 1000% (the paper's own examples in Sec. IV-B2).
  EXPECT_NEAR(bench::scaled_relative_difference(1.1, 1.0), 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(bench::scaled_relative_difference(2.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(bench::scaled_relative_difference(11.0, 1.0), 10.0);
}

TEST(ScaledRelDiff, NegativeWhenArrayOrderWins) {
  EXPECT_LT(bench::scaled_relative_difference(0.9, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(bench::scaled_relative_difference(0.5, 1.0), -0.5);
}

TEST(ScaledRelDiff, ZeroBaselineIsGuarded) {
  EXPECT_DOUBLE_EQ(bench::scaled_relative_difference(5.0, 0.0), 0.0);
}

TEST(TimerTest, MeasuresElapsedTime) {
  const bench::Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = timer.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);
}

TEST(MinTimeOf, PicksTheFastestRep) {
  int calls = 0;
  const double t = bench::min_time_of(3, [&] {
    ++calls;
    std::this_thread::sleep_for(std::chrono::milliseconds(calls == 2 ? 1 : 30));
  });
  EXPECT_EQ(calls, 3);
  EXPECT_LT(t, 0.025);
}

// ---------------------------------------------------------------------------
// ResultTable
// ---------------------------------------------------------------------------

TEST(ResultTableTest, StoresAndRendersCells) {
  bench::ResultTable table("Fig X", {"r1 px xyz", "r5 pz zyx"}, {"2", "4"});
  table.set(0, 0, -0.02);
  table.set(0, 1, -0.03);
  table.set(1, 0, 2.23);
  table.set(1, 1, 2.21);
  EXPECT_DOUBLE_EQ(table.at(1, 0), 2.23);
  const std::string text = table.to_text(2);
  EXPECT_NE(text.find("Fig X"), std::string::npos);
  EXPECT_NE(text.find("r5 pz zyx"), std::string::npos);
  EXPECT_NE(text.find("2.23"), std::string::npos);
  EXPECT_NE(text.find("-0.02"), std::string::npos);
}

TEST(ResultTableTest, CsvShape) {
  bench::ResultTable table("t", {"a", "b"}, {"c1", "c2", "c3"});
  table.set(1, 2, 42.5);
  const std::string csv = table.to_csv(1);
  EXPECT_EQ(csv, "row,c1,c2,c3\na,0.0,0.0,0.0\nb,0.0,0.0,42.5\n");
}

TEST(ResultTableTest, WriteCsvRoundTrips) {
  bench::ResultTable table("t", {"a"}, {"x"});
  table.set(0, 0, 1.25);
  const auto path = std::filesystem::temp_directory_path() / "sfcvis_table.csv";
  table.write_csv(path, 2);
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "row,x");
  EXPECT_EQ(line2, "a,1.25");
}

TEST(ResultTableTest, OutOfRangeThrows) {
  bench::ResultTable table("t", {"a"}, {"x"});
  EXPECT_THROW(table.set(1, 0, 0.0), std::out_of_range);
  EXPECT_THROW(table.set(0, 1, 0.0), std::out_of_range);
  EXPECT_THROW((void)table.at(2, 0), std::out_of_range);
}

// ---------------------------------------------------------------------------
// Options
// ---------------------------------------------------------------------------

namespace {

bench::Options make_options(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"bench"};
  argv.insert(argv.end(), args.begin(), args.end());
  return bench::Options(static_cast<int>(argv.size()), argv.data());
}

}  // namespace

TEST(OptionsTest, ParsesTypedValues) {
  const auto opts = make_options({"--size=64", "--step=0.25", "--platform=mic", "--quick"});
  EXPECT_EQ(opts.get_u32("size", 0), 64u);
  EXPECT_DOUBLE_EQ(opts.get_double("step", 0.0), 0.25);
  EXPECT_EQ(opts.get_string("platform", ""), "mic");
  EXPECT_TRUE(opts.get_flag("quick"));
  EXPECT_FALSE(opts.get_flag("verbose"));
}

TEST(OptionsTest, FallbacksWhenAbsent) {
  const auto opts = make_options({});
  EXPECT_EQ(opts.get_u32("size", 128u), 128u);
  EXPECT_DOUBLE_EQ(opts.get_double("step", 0.5), 0.5);
  EXPECT_EQ(opts.get_string("platform", "ivybridge"), "ivybridge");
  EXPECT_EQ(opts.get_u32_list("threads", {2, 4}), (std::vector<std::uint32_t>{2, 4}));
}

TEST(OptionsTest, ParsesLists) {
  const auto opts = make_options({"--threads=2,4,6,8,10,12,18,24"});
  EXPECT_EQ(opts.get_u32_list("threads", {}),
            (std::vector<std::uint32_t>{2, 4, 6, 8, 10, 12, 18, 24}));
}

TEST(OptionsTest, RejectsMalformedInput) {
  EXPECT_THROW(make_options({"positional"}), std::invalid_argument);
  EXPECT_THROW(make_options({"-s=1"}), std::invalid_argument);
  const auto opts = make_options({"--size=abc", "--threads=2,x"});
  EXPECT_THROW((void)opts.get_u32("size", 0), std::invalid_argument);
  EXPECT_THROW((void)opts.get_u32_list("threads", {}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// perfmon
// ---------------------------------------------------------------------------

TEST(Perfmon, EventNames) {
  EXPECT_STREQ(perfmon::to_string(perfmon::Event::kCacheReferences), "cache-references");
  EXPECT_STREQ(perfmon::to_string(perfmon::Event::kCycles), "cycles");
}

TEST(Perfmon, ProbeDoesNotCrashAndIsConsistent) {
  // Whether counters are permitted is host policy; the contract is that the
  // probe is safe, stable, and matches open()'s behaviour.
  const bool avail = perfmon::PerfCounter::available();
  EXPECT_EQ(avail, perfmon::PerfCounter::available());
  auto counter = perfmon::PerfCounter::open(perfmon::Event::kCacheReferences);
  EXPECT_EQ(avail, counter.has_value());
}

TEST(Perfmon, DescribeOpenErrorIsActionable) {
  // Permission refusals name the sysctl the user must inspect; the other
  // common errnos get non-empty explanations too.
  for (const int err : {EACCES, EPERM}) {
    const std::string msg = perfmon::describe_open_error(err);
    EXPECT_NE(msg.find("perf_event_paranoid"), std::string::npos) << msg;
  }
  for (const int err : {ENOENT, ENOSYS, ENODEV, EINVAL}) {
    EXPECT_FALSE(perfmon::describe_open_error(err).empty()) << err;
  }
}

TEST(Perfmon, OpenReportsWhyItFailed) {
  // The fallback decision is never silent: exactly one of {counter,
  // recorded failure} exists, and the probe's reason agrees.
  perfmon::OpenFailure failure;
  const auto counter = perfmon::PerfCounter::open(perfmon::Event::kCacheReferences,
                                                  &failure);
  EXPECT_NE(counter.has_value(), failure.failed());
  if (failure.failed()) {
    EXPECT_NE(failure.error, 0);
    EXPECT_FALSE(failure.message.empty());
    EXPECT_FALSE(perfmon::PerfCounter::unavailable_reason().empty());
  } else {
    EXPECT_TRUE(perfmon::PerfCounter::unavailable_reason().empty());
  }
}

TEST(Perfmon, GroupOpenFailureIsReported) {
  perfmon::OpenFailure failure;
  auto group = perfmon::PerfGroup::open(&failure);
  EXPECT_NE(group.has_value(), failure.failed());
  if (group) {
    perfmon::GroupReading reading;
    EXPECT_TRUE(group->read_now(reading));
  } else {
    EXPECT_FALSE(failure.message.empty());
  }
}

TEST(Perfmon, CountsWorkWhenAvailable) {
  auto counter = perfmon::PerfCounter::open(perfmon::Event::kInstructions);
  if (!counter) {
    GTEST_SKIP() << "perf_event_open not permitted here (expected in containers); "
                    "benches fall back to memsim counters";
  }
  counter->start();
  volatile double sink = 0;
  for (int n = 0; n < 100000; ++n) {
    sink = sink + 1.0;
  }
  const auto count = counter->stop();
  EXPECT_GT(count, 100000u);
}
