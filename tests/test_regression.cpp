// Golden regression tests: checksums of end-to-end outputs pinned so that
// refactors of layouts, kernels, or schedulers cannot silently change
// results. The checksums are over bit patterns of the float outputs; any
// legitimate algorithm change must update them consciously.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "sfcvis/data/combustion.hpp"
#include "sfcvis/data/marschner_lobb.hpp"
#include "sfcvis/data/phantom.hpp"
#include "sfcvis/filters/bilateral.hpp"
#include "sfcvis/memsim/platforms.hpp"
#include "sfcvis/render/raycast.hpp"

namespace core = sfcvis::core;
namespace data = sfcvis::data;
namespace filters = sfcvis::filters;
namespace memsim = sfcvis::memsim;
namespace render = sfcvis::render;
namespace threads = sfcvis::threads;

namespace {

/// FNV-1a over the bit pattern of a float sequence.
class Fnv {
 public:
  void feed(float value) noexcept {
    std::uint32_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    for (int b = 0; b < 4; ++b) {
      hash_ ^= (bits >> (8 * b)) & 0xffu;
      hash_ *= 0x100000001b3ULL;
    }
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

template <class GridT>
std::uint64_t grid_checksum(const GridT& g) {
  Fnv fnv;
  g.for_each_index([&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    fnv.feed(g.at(i, j, k));
  });
  return fnv.value();
}

std::uint64_t image_checksum(const render::Image& img) {
  Fnv fnv;
  for (const auto& p : img.pixels()) {
    fnv.feed(p.r);
    fnv.feed(p.g);
    fnv.feed(p.b);
    fnv.feed(p.a);
  }
  return fnv.value();
}

}  // namespace

// The pinned values below are self-consistency anchors: they were produced
// by this implementation and guard against unintended change, not against
// the paper (which publishes no numerics at this granularity).

TEST(Golden, DatasetsAreBitStable) {
  const core::Extents3D e = core::Extents3D::cube(16);
  core::Grid3D<float, core::ArrayOrderLayout> phantom(e), comb(e), ml(e);
  data::fill_mri_phantom(phantom, {.seed = 1, .texture_amplitude = 0.02f, .noise_sigma = 0.03f});
  data::fill_combustion(comb);
  data::fill_marschner_lobb(ml);
  // Cross-check: the three datasets are distinct and deterministic.
  const auto h_phantom = grid_checksum(phantom);
  const auto h_comb = grid_checksum(comb);
  const auto h_ml = grid_checksum(ml);
  EXPECT_NE(h_phantom, h_comb);
  EXPECT_NE(h_comb, h_ml);
  core::Grid3D<float, core::ArrayOrderLayout> phantom2(e);
  data::fill_mri_phantom(phantom2, {.seed = 1, .texture_amplitude = 0.02f, .noise_sigma = 0.03f});
  EXPECT_EQ(grid_checksum(phantom2), h_phantom);
}

TEST(Golden, BilateralPipelineChecksumStableAcrossLayoutsAndThreads) {
  const core::Extents3D e = core::Extents3D::cube(16);
  core::Grid3D<float, core::ArrayOrderLayout> src(e);
  data::fill_mri_phantom(src, {.seed = 4, .texture_amplitude = 0.0f, .noise_sigma = 0.05f});
  const auto src_z = core::convert_layout<core::ZOrderLayout>(src);
  const filters::BilateralParams params{2, 1.5f, 0.15f};

  std::uint64_t reference = 0;
  for (const unsigned nthreads : {1u, 2u, 5u}) {
    threads::Pool pool(nthreads);
    core::Grid3D<float, core::ArrayOrderLayout> dst(e);
    filters::bilateral_parallel(src, dst, params, pool);
    const auto h_a = grid_checksum(dst);
    filters::bilateral_parallel(src_z, dst, params, pool);
    const auto h_z = grid_checksum(dst);
    EXPECT_EQ(h_a, h_z) << nthreads << " threads";
    if (reference == 0) {
      reference = h_a;
    }
    EXPECT_EQ(h_a, reference);
  }
}

TEST(Golden, RenderChecksumStableAcrossLayoutTileAndSchedule) {
  const core::Extents3D e = core::Extents3D::cube(16);
  core::Grid3D<float, core::ArrayOrderLayout> g(e);
  data::fill_combustion(g);
  const auto gz = core::convert_layout<core::ZOrderLayout>(g);
  const auto tf = render::TransferFunction::flame();
  const auto cam = render::orbit_camera(3, 8, 16, 16, 16);
  threads::Pool pool(3);

  const render::RenderConfig base{48, 48, 16, 0.6f, 0.98f};
  const auto reference = image_checksum(render::raycast_parallel(g, cam, tf, base, pool));

  render::RenderConfig other_tile = base;
  other_tile.tile_size = 7;
  EXPECT_EQ(image_checksum(render::raycast_parallel(gz, cam, tf, other_tile, pool)),
            reference);

  memsim::Hierarchy h(memsim::tiny_test_platform(), 2);
  EXPECT_EQ(image_checksum(render::raycast_traced(gz, cam, tf, base, h)), reference);
}

TEST(Golden, TracedCountersPinned) {
  // Full pinned-value regression for the deterministic counter path: the
  // exact numbers guard the cache model, the replay schedule, and the
  // kernels' access order all at once.
  const core::Extents3D e = core::Extents3D::cube(16);
  core::Grid3D<float, core::ArrayOrderLayout> src(e);
  data::fill_combustion(src);
  core::Grid3D<float, core::ArrayOrderLayout> dst(e);
  const filters::BilateralParams params{1, 1.5f, 0.1f, filters::PencilAxis::kZ,
                                        filters::LoopOrder::kZYX};
  memsim::Hierarchy h(memsim::tiny_test_platform(), 2);
  filters::bilateral_traced(src, dst, params, h);
  // 16^3 voxels x 28 reads.
  EXPECT_EQ(h.total_accesses(), 114688u);
  const auto before = std::make_tuple(h.counter("PAPI_L3_TCA"), h.memory_fills(),
                                      h.modeled_cycles_max());
  memsim::Hierarchy h2(memsim::tiny_test_platform(), 2);
  filters::bilateral_traced(src, dst, params, h2);
  EXPECT_EQ(before, std::make_tuple(h2.counter("PAPI_L3_TCA"), h2.memory_fills(),
                                    h2.modeled_cycles_max()));
}
