// Locality observatory: exact reuse-distance engine, SHARDS sampling, and
// the kernel-replay profiler (src/sfcvis/locality/).
//
// Contracts pinned here:
//  * ReuseStack implements LRU stack distance exactly — checked against
//    hand-computed oracles on sequential, constant-stride, two-pass,
//    tiled, and Morton-order walks, including streams long enough to
//    force timestamp compaction;
//  * the miss-ratio curve follows from those distances (an LRU cache of C
//    granules hits iff distance < C), is monotone nonincreasing, and
//    carries the cold misses at every capacity;
//  * SHARDS sampling at rate 1/1 reproduces the exact curve bit-for-bit,
//    is deterministic at every rate, and agrees with the exact curve
//    within a pinned tolerance on real kernel replays over all six
//    AnyVolume backends (array, tiled, z-order, hilbert, gmorton,
//    bricked);
//  * published profiles land in the run report's "locality" section and
//    pass tools/trace_summary.py --validate --require-locality.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "sfcvis/core/brick_file.hpp"
#include "sfcvis/core/bricked.hpp"
#include "sfcvis/core/morton.hpp"
#include "sfcvis/core/volume.hpp"
#include "sfcvis/exec/trace_session.hpp"
#include "sfcvis/locality/profile.hpp"
#include "sfcvis/locality/reuse.hpp"

namespace {

using namespace sfcvis;
using core::Extents3D;
using locality::LocalityConfig;
using locality::LocalityProfiler;
using locality::ReuseStack;
using locality::SampledReuseStack;

constexpr std::uint64_t kBase = 1ull << 30;  // TracedView's synthetic origin

double miss_at(const trace::LocalityGranularity& g, std::uint64_t capacity_bytes) {
  for (const trace::LocalityMissPoint& p : g.mrc) {
    if (p.capacity_bytes == capacity_bytes) {
      return p.miss_ratio;
    }
  }
  ADD_FAILURE() << "capacity " << capacity_bytes << " not on the ladder";
  return -1.0;
}

std::uint64_t hist_at(const trace::LocalityGranularity& g, std::size_t bucket) {
  return bucket < g.reuse_log2.size() ? g.reuse_log2[bucket] : 0;
}

// ---------------------------------------------------------------------------
// ReuseStack: exact LRU stack distances.
// ---------------------------------------------------------------------------

TEST(ReuseStack, HandComputedDistances) {
  ReuseStack stack;
  EXPECT_EQ(stack.touch(10), ReuseStack::kCold);
  EXPECT_EQ(stack.touch(10), 0u);  // nothing else touched in between
  EXPECT_EQ(stack.touch(20), ReuseStack::kCold);
  EXPECT_EQ(stack.touch(10), 1u);  // one distinct granule (20) in between
  EXPECT_EQ(stack.touch(20), 1u);
  EXPECT_EQ(stack.touch(30), ReuseStack::kCold);
  EXPECT_EQ(stack.touch(10), 2u);  // 20 and 30 since 10's last access
  EXPECT_EQ(stack.distinct(), 3u);
}

TEST(ReuseStack, MultiPassSurvivesCompaction) {
  // 3000 granules x 4 passes burns through >= 12000 timestamps, forcing
  // several compactions of the initial 1024-slot Fenwick tree. Every
  // non-cold distance must still be exactly W-1.
  constexpr std::uint64_t kW = 3000;
  ReuseStack stack;
  for (std::uint64_t g = 0; g < kW; ++g) {
    EXPECT_EQ(stack.touch(g), ReuseStack::kCold);
  }
  for (int pass = 0; pass < 3; ++pass) {
    for (std::uint64_t g = 0; g < kW; ++g) {
      ASSERT_EQ(stack.touch(g), kW - 1) << "pass " << pass << " granule " << g;
    }
  }
  EXPECT_EQ(stack.distinct(), kW);
}

TEST(ReuseStack, SampledRateOneMatchesExact) {
  // rate_log2 = 0 samples every granule with weight 1: the sampled stack
  // must be the exact stack.
  ReuseStack exact;
  SampledReuseStack sampled(0);
  for (std::uint64_t i = 0; i < 5000; ++i) {
    const std::uint64_t granule = (i * 37) % 501;  // cyclic, many reuses
    const std::uint64_t want = exact.touch(granule);
    const SampledReuseStack::Sample got = sampled.touch(granule);
    ASSERT_TRUE(got.sampled);
    ASSERT_EQ(got.cold, want == ReuseStack::kCold);
    if (!got.cold) {
      ASSERT_EQ(got.distance, want);
    }
  }
  EXPECT_EQ(sampled.weight(), 1u);
  EXPECT_EQ(sampled.sampled_distinct(), exact.distinct());
}

// ---------------------------------------------------------------------------
// LocalityProfiler: analytic walk oracles.
// ---------------------------------------------------------------------------

TEST(LocalityOracle, SequentialWalk) {
  // 4096 sequential floats: each 64B line is touched 16x back-to-back, so
  // every non-cold distance is 0, every fetched byte is used, and the MRC
  // is flat at the cold ratio for any capacity.
  LocalityProfiler profiler;
  constexpr std::uint64_t kN = 4096;
  for (std::uint64_t i = 0; i < kN; ++i) {
    profiler.access(kBase + i * 4, 4);
  }
  const trace::LocalityProfile p = profiler.profile("oracle", "sequential");
  EXPECT_EQ(p.accesses, kN);
  EXPECT_EQ(p.bytes, kN * 4);
  EXPECT_EQ(p.line.distinct, kN * 4 / 64);  // 256 lines
  EXPECT_EQ(p.line.cold, p.line.distinct);
  EXPECT_EQ(hist_at(p.line, 0), kN - p.line.distinct);  // all reuses at distance 0
  EXPECT_DOUBLE_EQ(p.line.utilization, 1.0);
  const double cold_ratio = static_cast<double>(p.line.distinct) / static_cast<double>(kN);
  for (const trace::LocalityMissPoint& point : p.line.mrc) {
    EXPECT_DOUBLE_EQ(point.miss_ratio, cold_ratio);
  }
  EXPECT_EQ(p.page.distinct, kN * 4 / 4096);  // 4 pages
  EXPECT_EQ(p.page.utilization, -1.0);        // untracked at page granularity
}

TEST(LocalityOracle, ConstantStrideOnePerLine) {
  // Stride-64B walk, one 4-byte read per line, never revisited: every
  // access is a cold miss at every capacity and only 4 of each fetched
  // 64 bytes are used.
  LocalityProfiler profiler;
  constexpr std::uint64_t kN = 512;
  for (std::uint64_t i = 0; i < kN; ++i) {
    profiler.access(kBase + i * 64, 4);
  }
  const trace::LocalityProfile p = profiler.profile("oracle", "stride64");
  EXPECT_EQ(p.line.distinct, kN);
  EXPECT_EQ(p.line.cold, kN);
  for (const trace::LocalityMissPoint& point : p.line.mrc) {
    EXPECT_DOUBLE_EQ(point.miss_ratio, 1.0);
  }
  EXPECT_DOUBLE_EQ(p.line.utilization, 4.0 / 64.0);
}

TEST(LocalityOracle, TwoPassWorkingSetStepsTheCurve) {
  // Two passes over 100 lines: pass 2 re-touches each line at distance 99
  // (the 99 other lines in between). A 4KB model holds 64 lines -> pass-2
  // accesses all miss (ratio 1.0); 8KB holds 128 -> they all hit and only
  // the cold misses remain (ratio 0.5).
  LocalityProfiler profiler;
  constexpr std::uint64_t kW = 100;
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t i = 0; i < kW; ++i) {
      profiler.access(kBase + i * 64, 4);
    }
  }
  const trace::LocalityProfile p = profiler.profile("oracle", "two-pass");
  EXPECT_EQ(p.accesses, 2 * kW);
  EXPECT_EQ(p.line.distinct, kW);
  EXPECT_EQ(p.line.cold, kW);
  EXPECT_EQ(hist_at(p.line, 7), kW);  // distance 99 lands in bucket [64,128)
  EXPECT_DOUBLE_EQ(miss_at(p.line, 4 << 10), 1.0);
  EXPECT_DOUBLE_EQ(miss_at(p.line, 8 << 10), 0.5);
  EXPECT_DOUBLE_EQ(miss_at(p.line, 64 << 20), 0.5);
}

TEST(LocalityOracle, TiledWalkSharesLinesAcrossTilePairs) {
  // 64x64 row-major floats walked in 8x8 tiles. A 64B line spans two
  // horizontally adjacent tiles, so each line sees: 8 touches in the left
  // tile (1 cold + 7 at distance 0), then 8 in the right tile (1 at
  // distance 7 — the 7 other lines of the left tile — + 7 at distance 0).
  LocalityProfiler profiler;
  constexpr std::uint64_t kEdge = 64;
  for (std::uint64_t ty = 0; ty < kEdge / 8; ++ty) {
    for (std::uint64_t tx = 0; tx < kEdge / 8; ++tx) {
      for (std::uint64_t y = 0; y < 8; ++y) {
        for (std::uint64_t x = 0; x < 8; ++x) {
          const std::uint64_t index = (ty * 8 + y) * kEdge + tx * 8 + x;
          profiler.access(kBase + index * 4, 4);
        }
      }
    }
  }
  const trace::LocalityProfile p = profiler.profile("oracle", "tiled");
  constexpr std::uint64_t kLines = kEdge * kEdge * 4 / 64;  // 256
  EXPECT_EQ(p.accesses, kEdge * kEdge);
  EXPECT_EQ(p.line.distinct, kLines);
  EXPECT_EQ(p.line.cold, kLines);
  EXPECT_EQ(hist_at(p.line, 0), kLines * 14);  // 14 distance-0 reuses per line
  EXPECT_EQ(hist_at(p.line, 3), kLines);       // distance 7 -> bucket [4,8)
  EXPECT_DOUBLE_EQ(p.line.utilization, 1.0);
  // Distance 7 hits even the smallest modeled cache: flat at cold ratio.
  const double cold_ratio =
      static_cast<double>(kLines) / static_cast<double>(p.accesses);
  EXPECT_DOUBLE_EQ(miss_at(p.line, 4 << 10), cold_ratio);
}

TEST(LocalityOracle, MortonWalkOverRowMajorStorage) {
  // An x-y-z loop over a Z-order-stored 32^3 volume touches address
  // morton_encode(i,j,k)*4: all cells exactly once, so the working set
  // and utilization match a sequential walk, but the access *order*
  // scatters — a 64B line spans two z-slabs (z0 is a low Morton bit), and
  // between a line's k=2c and k=2c+1 touches the scan walks the slab's
  // ~128 other lines, past the 64 a 4KB model holds. Any capacity >= the
  // 128KB working set restores the flat cold ratio.
  LocalityProfiler profiler;
  constexpr std::uint32_t kEdge = 32;
  for (std::uint32_t k = 0; k < kEdge; ++k) {
    for (std::uint32_t j = 0; j < kEdge; ++j) {
      for (std::uint32_t i = 0; i < kEdge; ++i) {
        profiler.access(kBase + core::morton_encode_3d(i, j, k) * 4, 4);
      }
    }
  }
  const trace::LocalityProfile p = profiler.profile("oracle", "morton-walk");
  constexpr std::uint64_t kN = kEdge * kEdge * kEdge;
  EXPECT_EQ(p.accesses, kN);
  EXPECT_EQ(p.line.distinct, kN * 4 / 64);  // 256 lines, every byte touched
  EXPECT_EQ(p.line.cold, p.line.distinct);
  EXPECT_DOUBLE_EQ(p.line.utilization, 1.0);
  const double cold_ratio =
      static_cast<double>(p.line.distinct) / static_cast<double>(kN);
  EXPECT_GT(miss_at(p.line, 4 << 10), cold_ratio);  // scatter penalty is visible
  EXPECT_DOUBLE_EQ(miss_at(p.line, 256 << 10), cold_ratio);
  EXPECT_DOUBLE_EQ(miss_at(p.line, 64 << 20), cold_ratio);
  // Monotone nonincreasing along the whole ladder.
  for (std::size_t i = 1; i < p.line.mrc.size(); ++i) {
    EXPECT_LE(p.line.mrc[i].miss_ratio, p.line.mrc[i - 1].miss_ratio + 1e-12);
  }
}

// ---------------------------------------------------------------------------
// Profiler plumbing: sinks, extra capacities, miss_estimate.
// ---------------------------------------------------------------------------

TEST(LocalityProfiler, SinkProviderFunnelsIntoOneStream) {
  LocalityConfig config;
  config.threads = 3;
  LocalityProfiler profiler(config);
  EXPECT_EQ(profiler.num_threads(), 3u);
  for (unsigned tid = 0; tid < 3; ++tid) {
    auto sink = profiler.sink(tid);
    sink.access(kBase + tid * 64, 4);
  }
  const trace::LocalityProfile p = profiler.profile("oracle", "sinks");
  EXPECT_EQ(p.accesses, 3u);
  EXPECT_EQ(p.line.distinct, 3u);
}

TEST(LocalityProfiler, ExtraCapacityIsEvaluatedExactly) {
  LocalityConfig config;
  config.sampled = false;
  config.extra_line_capacities = {6 << 10};  // 96 lines: between 4KB and 8KB
  LocalityProfiler profiler(config);
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t i = 0; i < 100; ++i) {
      profiler.access(kBase + i * 64, 4);
    }
  }
  // Distance 99 >= 96 lines: the pass-2 accesses miss at 6KB too.
  EXPECT_EQ(profiler.miss_estimate(6 << 10), 200u);
  EXPECT_EQ(profiler.miss_estimate(8 << 10), 100u);  // pinned ladder still works
  const trace::LocalityProfile p = profiler.profile("oracle", "extra");
  EXPECT_DOUBLE_EQ(miss_at(p.line, 6 << 10), 1.0);
  EXPECT_THROW((void)profiler.miss_estimate(5 << 10), std::invalid_argument);
}

TEST(LocalityProfiler, RejectsBadConfigs) {
  LocalityConfig bad_line;
  bad_line.line_bytes = 48;  // not a power of two
  EXPECT_THROW((void)LocalityProfiler(bad_line), std::invalid_argument);
  LocalityConfig bad_page;
  bad_page.page_bytes = 32;  // smaller than the line
  EXPECT_THROW((void)LocalityProfiler(bad_page), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Kernel replays over every backend: exact vs SHARDS agreement.
// ---------------------------------------------------------------------------

locality::WorkloadConfig replay_workload() {
  locality::WorkloadConfig workload;
  workload.kernel = "bilateral";
  workload.threads = 2;
  workload.trace_items = 32;
  return workload;
}

trace::LocalityProfile replay_profile(const core::AnyVolume& volume,
                                      const std::string& label,
                                      std::uint32_t sample_rate_log2) {
  LocalityConfig config;
  config.sample_rate_log2 = sample_rate_log2;
  return locality::profile_workload(volume, label, replay_workload(), config);
}

double max_mrc_gap(const trace::LocalityProfile& p) {
  double worst = 0.0;
  for (const trace::LocalityMissPoint& exact : p.line.mrc) {
    for (const trace::LocalityMissPoint& sampled : p.sampled.mrc) {
      if (sampled.capacity_bytes == exact.capacity_bytes) {
        worst = std::max(worst, std::abs(exact.miss_ratio - sampled.miss_ratio));
      }
    }
  }
  return worst;
}

void expect_shards_agreement(const core::AnyVolume& volume, const std::string& label) {
  // Rate 1/1 must reproduce the exact curve bit-for-bit.
  const trace::LocalityProfile full = replay_profile(volume, label, 0);
  ASSERT_TRUE(full.sampled_available) << label;
  EXPECT_EQ(full.sampled.distinct, full.line.distinct) << label;
  EXPECT_DOUBLE_EQ(max_mrc_gap(full), 0.0) << label;

  // Rate 1/4 on the same replay: the pinned agreement tolerance the
  // acceptance criteria gate. ~1/4 of a few hundred lines is plenty of
  // samples; 0.08 holds with slack on every backend (worst observed ~0.03).
  const trace::LocalityProfile sampled = replay_profile(volume, label, 2);
  EXPECT_LE(max_mrc_gap(sampled), 0.08) << label;

  // Determinism: SHARDS is hash-filtered, not random — bit-identical reruns.
  const trace::LocalityProfile again = replay_profile(volume, label, 2);
  ASSERT_EQ(again.sampled.mrc.size(), sampled.sampled.mrc.size());
  for (std::size_t i = 0; i < sampled.sampled.mrc.size(); ++i) {
    EXPECT_DOUBLE_EQ(again.sampled.mrc[i].miss_ratio,
                     sampled.sampled.mrc[i].miss_ratio)
        << label;
  }
  EXPECT_EQ(again.sampled.distinct, sampled.sampled.distinct) << label;
}

TEST(LocalityAgreement, InCoreBackends) {
  const Extents3D extents = Extents3D::cube(32);
  for (const char* spec_string :
       {"array-order", "tiled", "z-order", "hilbert", "gmorton"}) {
    SCOPED_TRACE(spec_string);
    const core::LayoutSpec spec = core::parse_layout_spec(spec_string);
    core::VolumeOpts vopts;
    vopts.interleave = spec.interleave;
    core::AnyVolume volume = core::make_volume(spec.kind, extents, vopts);
    locality::fill_workload_volume(volume, "bilateral");
    expect_shards_agreement(volume, spec_string);
  }
}

TEST(LocalityAgreement, BrickedBackend) {
  const Extents3D extents = Extents3D::cube(32);
  core::AnyVolume source = core::make_volume(core::LayoutKind::kArray, extents);
  locality::fill_workload_volume(source, "bilateral");

  const auto path = std::filesystem::temp_directory_path() /
                    ("sfcvis_test_locality_" + std::to_string(::getpid()) + ".sfcbrk");
  core::BrickPackOptions popts;
  popts.brick_edge = 8;
  (void)core::pack_brick_file(path.string(), source, popts);
  {
    core::AnyVolume volume(core::BrickedVolume::open(path.string()));
    expect_shards_agreement(volume, "bricked");
  }
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

TEST(LocalityAgreement, RaycastReplayAgreesToo) {
  const Extents3D extents = Extents3D::cube(32);
  core::AnyVolume volume = core::make_volume(core::LayoutKind::kZOrder, extents);
  locality::fill_workload_volume(volume, "raycast");
  locality::WorkloadConfig workload;
  workload.kernel = "raycast";
  workload.threads = 2;
  workload.trace_items = 16;
  workload.trace_image = 16;
  LocalityConfig config;
  config.sample_rate_log2 = 0;
  const trace::LocalityProfile full =
      locality::profile_workload(volume, "z-order", workload, config);
  ASSERT_TRUE(full.sampled_available);
  EXPECT_DOUBLE_EQ(max_mrc_gap(full), 0.0);
  EXPECT_GT(full.accesses, 0u);
}

// ---------------------------------------------------------------------------
// Run-report integration.
// ---------------------------------------------------------------------------

TEST(LocalityReport, PublishedProfilesLandInRunReport) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("sfcvis_test_locality_report_" + std::to_string(::getpid()) +
                     ".json");
  {
    exec::TraceSession session("", path.string(), false);
    LocalityProfiler profiler;
    for (std::uint64_t i = 0; i < 256; ++i) {
      profiler.access(kBase + i * 4, 4);
    }
    EXPECT_TRUE(locality::publish_profile(profiler.profile("test", "array-order")));
    session.finish();
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  const std::string json((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  for (const char* needle :
       {"\"locality\":", "\"available\":true", "\"kernel\":\"test\"",
        "\"layout\":\"array-order\"", "\"mrc\":[", "\"reuse_log2\":["}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

TEST(LocalityReport, PublishWithoutSessionReportsFalse) {
  LocalityProfiler profiler;
  profiler.access(kBase, 4);
  EXPECT_FALSE(locality::publish_profile(profiler.profile("test", "nowhere")));
}

}  // namespace
