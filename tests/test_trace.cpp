// Tests for the tracing + metrics subsystem (src/sfcvis/trace): span
// nesting and ordering, ring wraparound accounting, the zero-cost
// disabled path, the reported (never silent) hardware-counter fallback,
// cross-thread metric merging, and both exporters — including a pass
// through the Python validator (tools/trace_summary.py --validate), the
// same check CI's trace-smoke job runs.
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <new>
#include <string>

#include <gtest/gtest.h>

#include "sfcvis/threads/pool.hpp"
#include "sfcvis/threads/schedulers.hpp"
#include "sfcvis/trace/export.hpp"
#include "sfcvis/trace/metrics.hpp"
#include "sfcvis/trace/trace.hpp"

namespace threads = sfcvis::threads;
namespace trace = sfcvis::trace;

// GCC pairs the std::free in our replacement operator delete with the
// *default* operator new at some inlined call sites and warns; the
// replacement operator new below allocates with std::malloc, so the
// pairing is correct.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

// ---------------------------------------------------------------------------
// Global allocation counter. Replacing operator new is binary-wide, which
// is exactly what the disabled-path test needs: any heap traffic between
// two counter samples is visible. All other tests ignore it.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace {

const trace::ThreadTrace* thread_with_span(const trace::TraceSnapshot& snap,
                                           const std::string& name) {
  for (const auto& t : snap.threads) {
    for (const auto& s : t.spans) {
      if (name == s.name) {
        return &t;
      }
    }
  }
  return nullptr;
}

// Declared first so it runs before any test enables the tracer when the
// whole binary executes in one process (ctest runs each test in its own
// process, where the precondition holds trivially).
TEST(TraceDisabled, SpansNeitherAllocateNorRegister) {
  ASSERT_FALSE(trace::span_tracing_enabled());
  auto& tracer = trace::Tracer::instance();
  ASSERT_EQ(tracer.registered_threads(), 0u);
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (std::uint64_t n = 0; n < 1000; ++n) {
    SFCVIS_TRACE_SPAN("test.disabled", "tag", n);
    trace::set_worker_id(0);
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), before);
  EXPECT_EQ(tracer.registered_threads(), 0u);
}

TEST(TraceSpans, NestingOrderingAndDepth) {
#if !SFCVIS_TRACE_ENABLED
  GTEST_SKIP() << "span macros compiled out (SFCVIS_TRACE=OFF)";
#endif

  auto& tracer = trace::Tracer::instance();
  tracer.enable(trace::TraceOptions{.ring_capacity = 64, .with_hw_counters = false});
  {
    SFCVIS_TRACE_SPAN("test.outer", "variant", 7);
    SFCVIS_TRACE_SPAN("test.inner", nullptr, 8);
  }
  { SFCVIS_TRACE_SPAN("test.second"); }
  tracer.disable();
  const trace::TraceSnapshot snap = tracer.snapshot();
  EXPECT_FALSE(snap.span_tracing);

  const trace::ThreadTrace* t = thread_with_span(snap, "test.outer");
  ASSERT_NE(t, nullptr);
  ASSERT_EQ(t->spans.size(), 3u);
  // Spans complete inner-first; the ring is oldest-to-newest.
  const trace::SpanRecord& inner = t->spans[0];
  const trace::SpanRecord& outer = t->spans[1];
  const trace::SpanRecord& second = t->spans[2];
  EXPECT_STREQ(inner.name, "test.inner");
  EXPECT_STREQ(outer.name, "test.outer");
  EXPECT_STREQ(second.name, "test.second");
  EXPECT_EQ(outer.depth, 0u);
  EXPECT_EQ(inner.depth, 1u);
  EXPECT_EQ(second.depth, 0u);
  EXPECT_STREQ(outer.tag, "variant");
  EXPECT_EQ(outer.arg, 7u);
  EXPECT_EQ(inner.tag, nullptr);
  // Containment and ordering in time.
  EXPECT_LE(outer.start_ns, inner.start_ns);
  EXPECT_LE(inner.dur_ns, outer.dur_ns);
  EXPECT_LE(outer.start_ns + outer.dur_ns, second.start_ns + second.dur_ns);
  EXPECT_GE(outer.start_ns, snap.epoch_ns);
  // with_hw_counters = false: no span may claim deltas.
  EXPECT_FALSE(inner.have_counters);
  EXPECT_FALSE(snap.hw_counters);
}

TEST(TraceSpans, RingWraparoundKeepsNewestAndCountsDropped) {
#if !SFCVIS_TRACE_ENABLED
  GTEST_SKIP() << "span macros compiled out (SFCVIS_TRACE=OFF)";
#endif

  auto& tracer = trace::Tracer::instance();
  tracer.enable(trace::TraceOptions{.ring_capacity = 4, .with_hw_counters = false});
  for (std::uint64_t n = 0; n < 10; ++n) {
    SFCVIS_TRACE_SPAN("test.wrap", nullptr, n);
  }
  tracer.disable();
  const trace::TraceSnapshot snap = tracer.snapshot();
  const trace::ThreadTrace* t = thread_with_span(snap, "test.wrap");
  ASSERT_NE(t, nullptr);
  ASSERT_EQ(t->spans.size(), 4u);
  EXPECT_EQ(t->dropped, 6u);
  for (std::uint64_t n = 0; n < 4; ++n) {
    EXPECT_EQ(t->spans[n].arg, 6 + n);  // newest four, oldest-to-newest
  }
}

TEST(TraceSpans, PoolWorkersAreAttributed) {
#if !SFCVIS_TRACE_ENABLED
  GTEST_SKIP() << "span macros compiled out (SFCVIS_TRACE=OFF)";
#endif

  auto& tracer = trace::Tracer::instance();
  tracer.enable(trace::TraceOptions{.ring_capacity = 256, .with_hw_counters = false});
  threads::Pool pool(3);
  threads::parallel_for_dynamic(pool, 32, [](std::size_t item, unsigned) {
    SFCVIS_TRACE_SPAN("test.pool_item", nullptr, item);
  });
  tracer.disable();
  const trace::TraceSnapshot snap = tracer.snapshot();
  std::uint64_t pool_spans = 0;
  bool saw_worker = false;
  for (const auto& t : snap.threads) {
    if (t.spans.empty()) {
      continue;
    }
    if (t.worker_id != ~0u) {
      saw_worker = true;
      EXPECT_LT(t.worker_id, 3u);
    }
    for (const auto& s : t.spans) {
      if (std::string(s.name) == "test.pool_item") {
        ++pool_spans;
      }
    }
  }
  EXPECT_TRUE(saw_worker);
  EXPECT_EQ(pool_spans, 32u);
}

TEST(TraceHwCounters, FallbackIsReportedNeverSilent) {
  auto& tracer = trace::Tracer::instance();
  tracer.enable();  // defaults: hardware counters requested
  { SFCVIS_TRACE_SPAN("test.hw_probe"); }
  tracer.disable();
  const trace::TraceSnapshot snap = tracer.snapshot();
  if (snap.hw_counters) {
    EXPECT_EQ(snap.counter_source, "perf-group");
    const trace::ThreadTrace* t = thread_with_span(snap, "test.hw_probe");
    ASSERT_NE(t, nullptr);
    ASSERT_EQ(t->spans.size(), 1u);
    EXPECT_TRUE(t->spans[0].have_counters);
  } else {
    // The fallback decision must carry its reason.
    EXPECT_EQ(snap.counter_source.rfind("timing-only", 0), 0u) << snap.counter_source;
    EXPECT_GT(snap.counter_source.size(), std::string("timing-only: ").size());
    for (const auto& t : snap.threads) {
      EXPECT_FALSE(t.hw_counters);
      for (const auto& s : t.spans) {
        EXPECT_FALSE(s.have_counters);
      }
    }
  }
}

TEST(TraceMetrics, MergesAcrossPoolThreadsWithoutSpanTracing) {
  auto& tracer = trace::Tracer::instance();
  ASSERT_FALSE(trace::span_tracing_enabled());  // metrics work untraced
  tracer.reset_metrics();
  const trace::CounterId items = tracer.counter_id("test.items");
  const trace::HistogramId sizes = tracer.histogram_id("test.sizes");
  threads::Pool pool(3);
  threads::parallel_for_dynamic(pool, 100, [&](std::size_t item, unsigned) {
    tracer.add(items, 1);
    tracer.observe(sizes, item + 1);
  });
  const trace::MetricsSnapshot metrics = tracer.metrics_snapshot();

  EXPECT_EQ(metrics.total("test.items"), 100u);
  EXPECT_EQ(metrics.total("test.absent"), 0u);
  const trace::CounterMetric* counter = metrics.find_counter("test.items");
  ASSERT_NE(counter, nullptr);
  std::uint64_t per_thread_sum = 0;
  for (const auto& v : counter->per_thread) {
    EXPECT_GT(v.value, 0u);  // only contributing threads are listed
    per_thread_sum += v.value;
  }
  EXPECT_EQ(per_thread_sum, 100u);
  EXPECT_GE(counter->imbalance, 0.0);

  const trace::HistogramMetric* hist = metrics.find_histogram("test.sizes");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 100u);
  EXPECT_EQ(hist->sum, 5050u);
  EXPECT_EQ(hist->min, 1u);
  EXPECT_EQ(hist->max, 100u);
  EXPECT_DOUBLE_EQ(hist->mean(), 50.5);
  std::uint64_t bucket_sum = 0;
  for (const auto b : hist->buckets) {
    bucket_sum += b;
  }
  EXPECT_EQ(bucket_sum, 100u);
}

TEST(TraceMetrics, HistogramLog2Buckets) {
  auto& tracer = trace::Tracer::instance();
  tracer.reset_metrics();
  const trace::HistogramId id = tracer.histogram_id("test.log2");
  for (const std::uint64_t v : {1u, 2u, 3u, 4u, 1024u}) {
    tracer.observe(id, v);
  }
  const trace::MetricsSnapshot metrics = tracer.metrics_snapshot();
  const trace::HistogramMetric* hist = metrics.find_histogram("test.log2");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->buckets[0], 1u);   // [1, 2)
  EXPECT_EQ(hist->buckets[1], 2u);   // [2, 4)
  EXPECT_EQ(hist->buckets[2], 1u);   // [4, 8)
  EXPECT_EQ(hist->buckets[10], 1u);  // [1024, 2048)
  EXPECT_EQ(hist->min, 1u);
  EXPECT_EQ(hist->max, 1024u);
}

TEST(TraceExport, ChromeTraceCarriesPerfettoKeys) {
#if !SFCVIS_TRACE_ENABLED
  GTEST_SKIP() << "span macros compiled out (SFCVIS_TRACE=OFF)";
#endif

  auto& tracer = trace::Tracer::instance();
  tracer.enable(trace::TraceOptions{.ring_capacity = 16, .with_hw_counters = false});
  { SFCVIS_TRACE_SPAN("test.export", "mode", 3); }
  tracer.disable();
  const std::string json = trace::chrome_trace_json(tracer.snapshot());
  for (const char* needle :
       {"\"traceEvents\":[", "\"ph\":\"X\"", "\"ph\":\"M\"", "\"ts\":", "\"dur\":",
        "\"pid\":", "\"tid\":", "\"name\":\"test.export\"", "\"tag\":\"mode\""}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
}

TEST(TraceExport, RunReportCarriesPhasesMetricsAndTables) {
#if !SFCVIS_TRACE_ENABLED
  GTEST_SKIP() << "span macros compiled out (SFCVIS_TRACE=OFF)";
#endif

  auto& tracer = trace::Tracer::instance();
  tracer.reset_metrics();
  tracer.enable(trace::TraceOptions{.ring_capacity = 16, .with_hw_counters = false});
  { SFCVIS_TRACE_SPAN("test.report", "tag"); }
  tracer.add(tracer.counter_id("test.report_metric"), 5);
  tracer.disable();
  trace::ReportTable table;
  table.name = "test_table";
  table.title = "a table";
  table.rows = {"r0"};
  table.cols = {"c0", "c1"};
  table.cells = {{1.0, 2.0}};
  const std::string json =
      trace::run_report_json(tracer.snapshot(), tracer.metrics_snapshot(), {table});
  for (const char* needle :
       {"\"sfcvis_run_report\":1", "\"hw_counters\":", "\"phases\":[",
        "\"name\":\"test.report\"", "\"tag\":\"tag\"",
        "\"name\":\"test.report_metric\"", "\"total\":5",
        "\"name\":\"test_table\"", "\"rows\":[\"r0\"]", "\"cols\":[\"c0\",\"c1\"]",
        "\"cells\":[["}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
}

TEST(TraceExport, PythonValidatorAcceptsBothExports) {
#if !SFCVIS_TRACE_ENABLED
  GTEST_SKIP() << "span macros compiled out (SFCVIS_TRACE=OFF)";
#endif

  if (std::system("python3 -c 'import json' > /dev/null 2>&1") != 0) {
    GTEST_SKIP() << "python3 not available";
  }
  auto& tracer = trace::Tracer::instance();
  tracer.reset_metrics();
  tracer.enable(trace::TraceOptions{.ring_capacity = 64, .with_hw_counters = false});
  threads::Pool pool(2);
  threads::parallel_for_dynamic(pool, 8, [&](std::size_t item, unsigned) {
    SFCVIS_TRACE_SPAN("test.validated", nullptr, item);
    tracer.add(tracer.counter_id("test.validated_items"), 1);
  });
  tracer.disable();
  const trace::TraceSnapshot snap = tracer.snapshot();
  const trace::MetricsSnapshot metrics = tracer.metrics_snapshot();

  const auto dir = std::filesystem::temp_directory_path();
  const std::string trace_path = (dir / "sfcvis_test_trace.json").string();
  const std::string report_path = (dir / "sfcvis_test_report.json").string();
  ASSERT_TRUE(trace::write_text_file(trace_path, trace::chrome_trace_json(snap)));
  ASSERT_TRUE(trace::write_text_file(report_path, trace::run_report_json(snap, metrics)));

  const std::string cmd = std::string("python3 \"") + SFCVIS_TOOLS_DIR +
                          "/trace_summary.py\" --validate \"" + trace_path + "\" \"" +
                          report_path + "\"";
  EXPECT_EQ(std::system(cmd.c_str()), 0) << cmd;
  std::filesystem::remove(trace_path);
  std::filesystem::remove(report_path);
}

}  // namespace
