// Tests for the generalized-Morton layout family (core/gmorton.hpp):
// pattern parsing/validation, the degeneracy pins (canonical string ==
// kZOrder indices, "zz..yy..xx" == row-major, tiled generator ==
// TiledLayout on pow2 shapes), codec round-trips, masked ripple-add
// stepping, gather_row equivalence, and cache-key salting.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "sfcvis/core/gather.hpp"
#include "sfcvis/core/gmorton.hpp"
#include "sfcvis/core/layout.hpp"
#include "sfcvis/core/volume.hpp"

namespace core = sfcvis::core;

using core::ArrayOrderLayout;
using core::Extents3D;
using core::GeneralizedMortonLayout;
using core::GMortonTables;
using core::InterleavePattern;
using core::TiledLayout;
using core::ZOrderLayout;

namespace {

const Extents3D kShapes[] = {
    Extents3D::cube(8),    // pow2 cube
    Extents3D::cube(16),   // pow2 cube
    Extents3D{32, 16, 8},  // pow2 anisotropic
    Extents3D{20, 7, 5},   // non-pow2 anisotropic
    Extents3D{9, 17, 33},  // just past pow2 boundaries
    Extents3D{1, 1, 1},    // degenerate
    Extents3D{100, 1, 1},  // 1D-like
};

/// A deterministic scrambled (but valid) pattern for `e`: canonical
/// characters shuffled with a fixed-seed Fisher-Yates.
std::string scrambled_pattern(const Extents3D& e, std::uint64_t seed) {
  std::string s = InterleavePattern::canonical(e).str();
  std::mt19937_64 rng(seed);
  for (std::size_t i = s.size(); i > 1; --i) {
    std::swap(s[i - 1], s[rng() % i]);
  }
  return s;
}

}  // namespace

// ---------------------------------------------------------------------------
// InterleavePattern parsing and validation
// ---------------------------------------------------------------------------

TEST(InterleavePattern, ParsesValidString) {
  const Extents3D e = Extents3D::cube(4);  // 2 bits per axis
  const InterleavePattern p("zyxzyx", e);
  EXPECT_EQ(p.str(), "zyxzyx");
  EXPECT_EQ(p.axis_bits(0), 2u);
  EXPECT_EQ(p.axis_bits(1), 2u);
  EXPECT_EQ(p.axis_bits(2), 2u);
  EXPECT_EQ(p.total_bits(), 6u);
  // MSB-first string: rightmost 'x' is plane 0 at output bit 0; the
  // leftmost 'z' is plane 1 of z at output bit 5.
  EXPECT_EQ(p.bit_position(0, 0), 0u);
  EXPECT_EQ(p.bit_position(1, 0), 1u);
  EXPECT_EQ(p.bit_position(2, 0), 2u);
  EXPECT_EQ(p.bit_position(0, 1), 3u);
  EXPECT_EQ(p.bit_position(1, 1), 4u);
  EXPECT_EQ(p.bit_position(2, 1), 5u);
}

TEST(InterleavePattern, RejectsBadCharacter) {
  EXPECT_THROW(InterleavePattern("zyxzyw", Extents3D::cube(4)), std::invalid_argument);
  EXPECT_THROW(InterleavePattern("zyx zy", Extents3D::cube(4)), std::invalid_argument);
}

TEST(InterleavePattern, RejectsWrongAxisCounts) {
  const Extents3D e = Extents3D::cube(4);
  EXPECT_THROW(InterleavePattern("zyxzy", e), std::invalid_argument);    // too short
  EXPECT_THROW(InterleavePattern("zyxzyxx", e), std::invalid_argument);  // too long
  EXPECT_THROW(InterleavePattern("zyxzyz", e), std::invalid_argument);   // 1x/2y/3z
  // Error message names the expected counts and the offending string.
  try {
    InterleavePattern("zyxzyz", e);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& ex) {
    const std::string msg = ex.what();
    EXPECT_NE(msg.find("zyxzyz"), std::string::npos) << msg;
    EXPECT_NE(msg.find("2x"), std::string::npos) << msg;
  }
}

TEST(InterleavePattern, ValidatesAgainstPaddedExtents) {
  // 20x7x5 pads to 32x8x8: 5 x-bits, 3 y-bits, 3 z-bits.
  const Extents3D e{20, 7, 5};
  const InterleavePattern p("zzzyyyxxxxx", e);
  EXPECT_EQ(p.padded(), (Extents3D{32, 8, 8}));
  EXPECT_EQ(p.axis_bits(0), 5u);
  EXPECT_THROW(InterleavePattern("zyxzyxzyx", e), std::invalid_argument);
}

TEST(InterleavePattern, GeneratorsRoundTripThroughStrings) {
  for (const Extents3D& e : kShapes) {
    for (const InterleavePattern& gen :
         {InterleavePattern::canonical(e), InterleavePattern::array_order(e),
          InterleavePattern::tiled(e, 8, 8, 8)}) {
      const InterleavePattern reparsed(gen.str(), e);
      EXPECT_EQ(reparsed, gen) << gen.str();
    }
  }
}

TEST(InterleavePattern, CanonicalCubeIsRoundRobin) {
  EXPECT_EQ(InterleavePattern::canonical(Extents3D::cube(8)).str(), "zyxzyxzyx");
  EXPECT_EQ(InterleavePattern::array_order(Extents3D::cube(8)).str(), "zzzyyyxxx");
}

TEST(InterleaveHash, DistinguishesPatterns) {
  EXPECT_NE(core::interleave_hash("zyxzyx"), core::interleave_hash("zyxzxy"));
  EXPECT_NE(core::interleave_hash("zyx"), core::interleave_hash("zyxzyx"));
  EXPECT_EQ(core::interleave_hash("zyxzyx"), core::interleave_hash("zyxzyx"));
}

// ---------------------------------------------------------------------------
// Degeneracy pins: the classic layouts are members of the family
// ---------------------------------------------------------------------------

TEST(GMortonDegeneracy, CanonicalPatternMatchesZOrderEverywhere) {
  for (const Extents3D& e : kShapes) {
    const ZOrderLayout z(e);
    const GeneralizedMortonLayout g(e);  // default = canonical
    ASSERT_EQ(g.required_capacity(), z.required_capacity());
    for (std::uint32_t k = 0; k < e.nz; ++k) {
      for (std::uint32_t j = 0; j < e.ny; ++j) {
        for (std::uint32_t i = 0; i < e.nx; ++i) {
          ASSERT_EQ(g.index(i, j, k), z.index(i, j, k))
              << "(" << i << "," << j << "," << k << ") in " << e.nx << "x" << e.ny << "x"
              << e.nz;
        }
      }
    }
  }
}

TEST(GMortonDegeneracy, ArrayPatternMatchesRowMajorOverPaddedExtents) {
  // The pure "zz..yy..xx" member is row-major over the PADDED extents, so
  // it agrees with ArrayOrderLayout (row-major over logical extents)
  // exactly when no axis pads — any pow2 shape. On non-pow2 shapes the
  // row stride differs (padded nx vs logical nx) by design.
  for (const Extents3D& e :
       {Extents3D::cube(8), Extents3D::cube(16), Extents3D{32, 16, 8}, Extents3D{1, 1, 1}}) {
    const ArrayOrderLayout a(e);
    const GeneralizedMortonLayout g(e, InterleavePattern::array_order(e));
    for (std::uint32_t k = 0; k < e.nz; ++k) {
      for (std::uint32_t j = 0; j < e.ny; ++j) {
        for (std::uint32_t i = 0; i < e.nx; ++i) {
          ASSERT_EQ(g.index(i, j, k), a.index(i, j, k));
        }
      }
    }
  }
  // Non-pow2: still row-major in the padded box (x-runs contiguous, stride
  // = padded nx), even though the linear index differs from kArray.
  const Extents3D e{20, 7, 5};
  const GeneralizedMortonLayout g(e, InterleavePattern::array_order(e));
  EXPECT_EQ(g.index(1, 0, 0), g.index(0, 0, 0) + 1);
  EXPECT_EQ(g.index(0, 1, 0), g.index(0, 0, 0) + 32);      // padded nx
  EXPECT_EQ(g.index(0, 0, 1), g.index(0, 0, 0) + 32 * 8);  // padded nx*ny
}

TEST(GMortonDegeneracy, TiledPatternMatchesTiledLayoutOnPow2Shapes) {
  // TiledLayout uses ceil-div tile counts, so bit-exact agreement needs
  // pow2 extents (where padding is the identity).
  for (const Extents3D& e : {Extents3D::cube(16), Extents3D{32, 16, 8}}) {
    const TiledLayout t(e, 8);
    const GeneralizedMortonLayout g(e, InterleavePattern::tiled(e, 8, 8, 8));
    for (std::uint32_t k = 0; k < e.nz; ++k) {
      for (std::uint32_t j = 0; j < e.ny; ++j) {
        for (std::uint32_t i = 0; i < e.nx; ++i) {
          ASSERT_EQ(g.index(i, j, k), t.index(i, j, k));
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Codec: decode inverts index, stepping matches re-encode
// ---------------------------------------------------------------------------

TEST(GMortonCodec, DecodeInvertsIndex) {
  for (const Extents3D& e : kShapes) {
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
      const GeneralizedMortonLayout g(e, scrambled_pattern(e, seed));
      for (std::uint32_t k = 0; k < e.nz; ++k) {
        for (std::uint32_t j = 0; j < e.ny; ++j) {
          for (std::uint32_t i = 0; i < e.nx; ++i) {
            const core::Coord3D c = g.decode(g.index(i, j, k));
            ASSERT_EQ(c.i, i);
            ASSERT_EQ(c.j, j);
            ASSERT_EQ(c.k, k);
          }
        }
      }
    }
  }
}

TEST(GMortonCodec, IncAndStepMatchReEncode) {
  const Extents3D e{20, 7, 5};
  for (const std::uint64_t seed : {7u, 8u}) {
    const GeneralizedMortonLayout g(e, scrambled_pattern(e, seed));
    const GMortonTables& t = g.tables();
    for (std::uint32_t k = 0; k < e.nz; ++k) {
      for (std::uint32_t j = 0; j < e.ny; ++j) {
        for (std::uint32_t i = 0; i < e.nx; ++i) {
          const std::uint64_t m = g.index(i, j, k);
          if (i + 1 < t.padded().nx) {
            ASSERT_EQ(t.inc_axis(m, 0), g.index(i + 1, j, k));
          }
          if (j + 1 < t.padded().ny) {
            ASSERT_EQ(t.inc_axis(m, 1), g.index(i, j + 1, k));
          }
          if (k + 1 < t.padded().nz) {
            ASSERT_EQ(t.inc_axis(m, 2), g.index(i, j, k + 1));
          }
          for (const std::int32_t d : {-3, -1, 2, 5}) {
            const std::int64_t ni = std::int64_t{i} + d;
            if (ni >= 0 && ni < std::int64_t{t.padded().nx}) {
              ASSERT_EQ(t.step_axis(m, 0, d),
                        g.index(static_cast<std::uint32_t>(ni), j, k));
            }
          }
        }
      }
    }
  }
}

TEST(GMortonCodec, GatherRowMatchesDirectReads) {
  const Extents3D e{24, 12, 10};
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    core::GMortonVolume vol{GeneralizedMortonLayout(e, scrambled_pattern(e, seed))};
    vol.fill_from([](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
      return static_cast<float>(i * 1000 + j * 100 + k);
    });
    std::vector<float> fast(32);
    core::GatherRunStats rs;
    for (const core::Axis3 axis : {core::Axis3::kX, core::Axis3::kY, core::Axis3::kZ}) {
      const std::uint32_t n =
          axis == core::Axis3::kX ? e.nx : axis == core::Axis3::kY ? e.ny : e.nz;
      for (std::uint32_t j = 0; j < 4; ++j) {
        gather_row(vol, axis, 0, j, 1, n, fast.data(), &rs);
        for (std::uint32_t l = 0; l < n; ++l) {
          const std::uint32_t ii = axis == core::Axis3::kX ? l : 0;
          const std::uint32_t jj = axis == core::Axis3::kY ? j + l : j;
          const std::uint32_t kk = axis == core::Axis3::kZ ? 1 + l : 1;
          ASSERT_EQ(fast[l], vol.at(ii, jj, kk))
              << "axis " << static_cast<int>(axis) << " l " << l << " seed " << seed;
        }
      }
    }
    EXPECT_GT(rs.runs, 0u);
    EXPECT_EQ(rs.elements, 4u * (e.nx + e.ny + e.nz));
  }
}

// ---------------------------------------------------------------------------
// Facade integration
// ---------------------------------------------------------------------------

TEST(GMortonVolumeFacade, VariantIndexMatchesKindEnum) {
  for (const core::LayoutKind kind : core::kAllLayoutKinds) {
    const core::AnyVolume v = core::make_volume(kind, Extents3D::cube(4));
    EXPECT_EQ(v.kind(), kind);
    EXPECT_STREQ(v.layout_name(), core::to_string(kind));
  }
}

TEST(GMortonVolumeFacade, MakeVolumeHonorsInterleave) {
  core::VolumeOpts opts;
  opts.interleave = "xxyyzz";  // x slowest — deliberately non-canonical
  const Extents3D e = Extents3D::cube(4);
  core::AnyVolume v = core::make_volume(core::LayoutKind::kGMorton, e, opts);
  const auto& g = v.as<GeneralizedMortonLayout>();
  EXPECT_EQ(g.layout().pattern().str(), "xxyyzz");
  // Invalid pattern surfaces as invalid_argument at construction.
  opts.interleave = "xyz";
  EXPECT_THROW(core::make_volume(core::LayoutKind::kGMorton, e, opts),
               std::invalid_argument);
}

TEST(GMortonVolumeFacade, ConvertToRoundTripsContents) {
  const Extents3D e{9, 6, 5};
  core::AnyVolume src = core::make_volume(core::LayoutKind::kArray, e);
  src.fill_from([](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    return static_cast<float>(7 * i + 5 * j + 3 * k);
  });
  core::VolumeOpts opts;
  opts.interleave = scrambled_pattern(e, 21);
  const core::AnyVolume gm = src.convert_to(core::LayoutKind::kGMorton, opts);
  const core::AnyVolume back = gm.convert_to(core::LayoutKind::kArray);
  for (std::uint32_t k = 0; k < e.nz; ++k) {
    for (std::uint32_t j = 0; j < e.ny; ++j) {
      for (std::uint32_t i = 0; i < e.nx; ++i) {
        ASSERT_EQ(back.at(i, j, k), src.at(i, j, k));
      }
    }
  }
}

TEST(GMortonCacheSalt, ZeroForFixedLayoutsPatternHashForGMorton) {
  EXPECT_EQ(core::layout_cache_salt(ZOrderLayout(Extents3D::cube(4))), 0u);
  EXPECT_EQ(core::layout_cache_salt(ArrayOrderLayout(Extents3D::cube(4))), 0u);
  const Extents3D e = Extents3D::cube(4);
  const GeneralizedMortonLayout a(e, "zyxzyx");
  const GeneralizedMortonLayout b(e, "xyzxyz");
  EXPECT_NE(core::layout_cache_salt(a), core::layout_cache_salt(b));
  EXPECT_EQ(core::layout_cache_salt(a), core::interleave_hash("zyxzyx"));
}
