// Tests for the raycasting volume renderer and its components.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "sfcvis/exec/execution_context.hpp"
#include "sfcvis/data/combustion.hpp"
#include "sfcvis/memsim/platforms.hpp"
#include "sfcvis/render/camera.hpp"
#include "sfcvis/render/image.hpp"
#include "sfcvis/render/raycast.hpp"
#include "sfcvis/render/transfer.hpp"

namespace core = sfcvis::core;
namespace exec = sfcvis::exec;
namespace data = sfcvis::data;
namespace memsim = sfcvis::memsim;
namespace render = sfcvis::render;
namespace threads = sfcvis::threads;

using core::ArrayOrderLayout;
using core::Extents3D;
using core::Grid3D;
using core::ZOrderLayout;
using render::Camera;
using render::Image;
using render::Projection;
using render::Ray;
using render::RenderConfig;
using render::Rgba;
using render::TileDecomposition;
using render::TransferFunction;
using render::Vec3;

// ---------------------------------------------------------------------------
// Vec3 / Ray
// ---------------------------------------------------------------------------

TEST(Vec, BasicAlgebra) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(a + b, (Vec3{5, 7, 9}));
  EXPECT_EQ(b - a, (Vec3{3, 3, 3}));
  EXPECT_EQ(a * 2.0f, (Vec3{2, 4, 6}));
  EXPECT_FLOAT_EQ(dot(a, b), 32.0f);
  EXPECT_EQ(cross(Vec3{1, 0, 0}, Vec3{0, 1, 0}), (Vec3{0, 0, 1}));
  EXPECT_FLOAT_EQ(length(Vec3{3, 4, 0}), 5.0f);
  EXPECT_FLOAT_EQ(length(normalized(a)), 1.0f);
}

TEST(Vec, RayAt) {
  const Ray r{{1, 0, 0}, {0, 1, 0}};
  EXPECT_EQ(r.at(2.5f), (Vec3{1, 2.5f, 0}));
}

// ---------------------------------------------------------------------------
// Box intersection
// ---------------------------------------------------------------------------

TEST(IntersectBox, HitsFromOutside) {
  const auto span = render::intersect_box(Ray{{-5, 0.5f, 0.5f}, {1, 0, 0}},
                                          Vec3{0, 0, 0}, Vec3{1, 1, 1});
  ASSERT_TRUE(span.has_value());
  EXPECT_FLOAT_EQ(span->first, 5.0f);
  EXPECT_FLOAT_EQ(span->second, 6.0f);
}

TEST(IntersectBox, MissesOffAxis) {
  EXPECT_FALSE(render::intersect_box(Ray{{-5, 2.0f, 0.5f}, {1, 0, 0}}, Vec3{0, 0, 0},
                                     Vec3{1, 1, 1})
                   .has_value());
}

TEST(IntersectBox, ParallelRayOutsideSlabMisses) {
  EXPECT_FALSE(render::intersect_box(Ray{{0.5f, 5.0f, 0.5f}, {1, 0, 0}}, Vec3{0, 0, 0},
                                     Vec3{1, 1, 1})
                   .has_value());
}

TEST(IntersectBox, StartInsideClipsToZero) {
  const auto span = render::intersect_box(Ray{{0.5f, 0.5f, 0.5f}, {1, 0, 0}},
                                          Vec3{0, 0, 0}, Vec3{1, 1, 1});
  ASSERT_TRUE(span.has_value());
  EXPECT_FLOAT_EQ(span->first, 0.0f);
  EXPECT_FLOAT_EQ(span->second, 0.5f);
}

TEST(IntersectBox, BoxBehindRayMisses) {
  EXPECT_FALSE(render::intersect_box(Ray{{5, 0.5f, 0.5f}, {1, 0, 0}}, Vec3{0, 0, 0},
                                     Vec3{1, 1, 1})
                   .has_value());
}

TEST(IntersectBox, DiagonalRayHits) {
  const auto span = render::intersect_box(Ray{{-1, -1, -1}, normalized(Vec3{1, 1, 1})},
                                          Vec3{0, 0, 0}, Vec3{2, 2, 2});
  ASSERT_TRUE(span.has_value());
  EXPECT_LT(span->first, span->second);
}

// ---------------------------------------------------------------------------
// Compositing / transfer function
// ---------------------------------------------------------------------------

TEST(Compositing, OverOperatorAccumulates) {
  Rgba front{0.5f, 0, 0, 0.5f};
  front.composite_under(Rgba{0, 1.0f, 0, 0.5f});
  EXPECT_FLOAT_EQ(front.a, 0.75f);
  EXPECT_FLOAT_EQ(front.g, 0.25f);
  EXPECT_FLOAT_EQ(front.r, 0.5f);
}

TEST(Compositing, OpaqueFrontBlocksBack) {
  Rgba front{1, 1, 1, 1.0f};
  front.composite_under(Rgba{0, 1, 0, 1.0f});
  EXPECT_FLOAT_EQ(front.a, 1.0f);
  EXPECT_FLOAT_EQ(front.g, 1.0f);  // unchanged: back contributes nothing
}

TEST(Transfer, InterpolatesAndClamps) {
  const TransferFunction tf({{0.0f, {0, 0, 0, 0}}, {1.0f, {1, 0, 0, 0.5f}}});
  EXPECT_EQ(tf.sample(-1.0f), (Rgba{0, 0, 0, 0}));
  EXPECT_EQ(tf.sample(2.0f), (Rgba{1, 0, 0, 0.5f}));
  const Rgba mid = tf.sample(0.5f);
  EXPECT_FLOAT_EQ(mid.r, 0.5f);
  EXPECT_FLOAT_EQ(mid.a, 0.25f);
}

TEST(Transfer, RejectsUnsortedOrEmpty) {
  EXPECT_THROW(TransferFunction({}), std::invalid_argument);
  EXPECT_THROW(TransferFunction({{1.0f, {}}, {0.0f, {}}}), std::invalid_argument);
}

TEST(Transfer, FlameMapIsMonotoneInOpacity) {
  const auto tf = TransferFunction::flame();
  float prev = -1;
  for (float v = 0; v <= 1.0f; v += 0.05f) {
    const float a = tf.sample(v).a;
    EXPECT_GE(a, prev);
    prev = a;
  }
}

// ---------------------------------------------------------------------------
// Tiles
// ---------------------------------------------------------------------------

TEST(Tiles, ExactDecomposition) {
  const TileDecomposition tiles(64, 64, 32);
  EXPECT_EQ(tiles.count(), 4u);
  const auto t3 = tiles.bounds(3);
  EXPECT_EQ(t3.x0, 32u);
  EXPECT_EQ(t3.y0, 32u);
  EXPECT_EQ(t3.x1, 64u);
  EXPECT_EQ(t3.y1, 64u);
}

TEST(Tiles, ClipsEdgeTiles) {
  const TileDecomposition tiles(70, 40, 32);
  EXPECT_EQ(tiles.count(), 6u);  // 3 x 2
  const auto last = tiles.bounds(5);
  EXPECT_EQ(last.x1, 70u);
  EXPECT_EQ(last.y1, 40u);
}

TEST(Tiles, CoversEveryPixelOnce) {
  const std::uint32_t w = 45, h = 33;
  const TileDecomposition tiles(w, h, 16);
  std::vector<int> cover(static_cast<std::size_t>(w) * h, 0);
  for (std::size_t t = 0; t < tiles.count(); ++t) {
    const auto b = tiles.bounds(t);
    for (std::uint32_t y = b.y0; y < b.y1; ++y) {
      for (std::uint32_t x = b.x0; x < b.x1; ++x) {
        cover[static_cast<std::size_t>(y) * w + x] += 1;
      }
    }
  }
  for (const int c : cover) {
    ASSERT_EQ(c, 1);
  }
}

TEST(Tiles, ZeroTileSizeRejected) {
  EXPECT_THROW(TileDecomposition(64, 64, 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Camera
// ---------------------------------------------------------------------------

TEST(CameraTest, CenterPixelLooksForward) {
  const Camera cam({0, 0, 5}, {0, 0, 0}, {0, 1, 0}, 40.0f, Projection::kPerspective);
  // With an odd image the center pixel's ray runs along -z.
  const Ray r = cam.ray_for_pixel(50, 50, 101, 101);
  EXPECT_NEAR(r.dir.x, 0.0f, 1e-3f);
  EXPECT_NEAR(r.dir.y, 0.0f, 1e-3f);
  EXPECT_NEAR(r.dir.z, -1.0f, 1e-3f);
  EXPECT_EQ(r.origin, (Vec3{0, 0, 5}));
}

TEST(CameraTest, PerspectiveRaysDiverge) {
  const Camera cam({0, 0, 5}, {0, 0, 0}, {0, 1, 0}, 40.0f, Projection::kPerspective);
  const Ray left = cam.ray_for_pixel(0, 32, 64, 64);
  const Ray right = cam.ray_for_pixel(63, 32, 64, 64);
  EXPECT_LT(left.dir.x, -0.05f);
  EXPECT_GT(right.dir.x, 0.05f);
  EXPECT_EQ(left.origin, right.origin);  // common eyepoint
}

TEST(CameraTest, OrthographicRaysAreParallel) {
  const Camera cam({0, 0, 5}, {0, 0, 0}, {0, 1, 0}, 40.0f, Projection::kOrthographic, 2.0f);
  const Ray a = cam.ray_for_pixel(0, 0, 64, 64);
  const Ray b = cam.ray_for_pixel(63, 63, 64, 64);
  EXPECT_EQ(a.dir, b.dir);
  EXPECT_NE(a.origin, b.origin);  // offset origins instead
}

TEST(CameraTest, OrbitViewpointGeometry) {
  // Viewpoint 0 looks along -x; viewpoint 4 (of 8) along +x; viewpoint 2
  // along -z. (The "alignment with memory grain" axis of Figs. 4-6.)
  const auto cam0 = render::orbit_camera(0, 8, 64, 64, 64);
  EXPECT_LT(cam0.forward().x, -0.95f);
  const auto cam4 = render::orbit_camera(4, 8, 64, 64, 64);
  EXPECT_GT(cam4.forward().x, 0.95f);
  const auto cam2 = render::orbit_camera(2, 8, 64, 64, 64);
  EXPECT_LT(cam2.forward().z, -0.95f);
  EXPECT_NEAR(cam2.forward().x, 0.0f, 0.05f);
}

TEST(CameraTest, OrbitKeepsDistance) {
  for (unsigned v = 0; v < 8; ++v) {
    const auto cam = render::orbit_camera(v, 8, 64, 64, 64);
    const Vec3 center{32, 32, 32};
    EXPECT_NEAR(length(cam.eye() - center), length(render::orbit_camera(0, 8, 64, 64, 64).eye() - center),
                1e-2f);
  }
}

// ---------------------------------------------------------------------------
// Trilinear sampling
// ---------------------------------------------------------------------------

TEST(Trilinear, ExactAtLatticePoints) {
  Grid3D<float, ArrayOrderLayout> g(Extents3D{4, 4, 4});
  g.fill_from([](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    return static_cast<float>(i + 10 * j + 100 * k);
  });
  const core::PlainView view(g);
  EXPECT_FLOAT_EQ(render::sample_trilinear(view, {1, 2, 3}), 321.0f);
  EXPECT_FLOAT_EQ(render::sample_trilinear(view, {0, 0, 0}), 0.0f);
}

TEST(Trilinear, ReproducesLinearFieldsExactly) {
  Grid3D<float, ArrayOrderLayout> g(Extents3D{8, 8, 8});
  g.fill_from([](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    return 2.0f * static_cast<float>(i) - 1.0f * static_cast<float>(j) +
           0.5f * static_cast<float>(k) + 3.0f;
  });
  const core::PlainView view(g);
  EXPECT_NEAR(render::sample_trilinear(view, {2.25f, 3.5f, 4.75f}),
              2.0f * 2.25f - 3.5f + 0.5f * 4.75f + 3.0f, 1e-4f);
}

TEST(Trilinear, ClampsOutsideLattice) {
  Grid3D<float, ArrayOrderLayout> g(Extents3D{2, 2, 2});
  g.fill_from([](std::uint32_t i, std::uint32_t, std::uint32_t) {
    return static_cast<float>(i);
  });
  const core::PlainView view(g);
  EXPECT_FLOAT_EQ(render::sample_trilinear(view, {-0.4f, 0.0f, 0.0f}), 0.0f);
  EXPECT_FLOAT_EQ(render::sample_trilinear(view, {1.4f, 1.0f, 1.0f}), 1.0f);
}

// ---------------------------------------------------------------------------
// End-to-end rendering
// ---------------------------------------------------------------------------

namespace {

/// Opaque unit ball in the volume center; background zero.
void fill_ball(Grid3D<float, ArrayOrderLayout>& g) {
  const auto& e = g.extents();
  g.fill_from([&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    const float dx = (static_cast<float>(i) - 0.5f * static_cast<float>(e.nx - 1));
    const float dy = (static_cast<float>(j) - 0.5f * static_cast<float>(e.ny - 1));
    const float dz = (static_cast<float>(k) - 0.5f * static_cast<float>(e.nz - 1));
    const float r = 0.3f * static_cast<float>(e.nx);
    return (dx * dx + dy * dy + dz * dz) < r * r ? 1.0f : 0.0f;
  });
}

TransferFunction opaque_white() {
  return TransferFunction({{0.0f, {0, 0, 0, 0}}, {0.5f, {0, 0, 0, 0}}, {1.0f, {1, 1, 1, 0.9f}}});
}

double image_luminance(const Image& img) {
  double sum = 0;
  for (const auto& p : img.pixels()) {
    sum += p.r + p.g + p.b;
  }
  return sum;
}

}  // namespace

TEST(Raycast, BallIsVisibleFromEveryOrbitViewpoint) {
  Grid3D<float, ArrayOrderLayout> g(Extents3D::cube(32));
  fill_ball(g);
  exec::ExecutionContext pool(2);
  const RenderConfig config{64, 64, 32, 0.5f, 0.98f};
  const auto tf = opaque_white();
  for (unsigned v = 0; v < 8; ++v) {
    const auto cam = render::orbit_camera(v, 8, 32, 32, 32);
    const Image img = render::raycast_parallel(g, cam, tf, config, pool);
    // Center pixel hits the ball; corner pixel misses.
    EXPECT_GT(img.at(32, 32).a, 0.5f) << "viewpoint " << v;
    EXPECT_FLOAT_EQ(img.at(0, 0).a, 0.0f) << "viewpoint " << v;
    EXPECT_GT(image_luminance(img), 10.0) << "viewpoint " << v;
  }
}

TEST(Raycast, LayoutTransparencyPixelExact) {
  // Identical images from array-order and Z-order copies of the volume —
  // the paper's transparency requirement, pixel-exact because the sequence
  // of float operations is identical.
  const Extents3D e = Extents3D::cube(24);
  Grid3D<float, ArrayOrderLayout> ga(e);
  data::fill_combustion(ga);
  const auto gz = core::convert_layout<ZOrderLayout>(ga);
  exec::ExecutionContext pool(2);
  const RenderConfig config{48, 48, 16, 0.6f, 0.98f};
  const auto tf = TransferFunction::flame();
  const auto cam = render::orbit_camera(3, 8, 24, 24, 24);
  const Image ia = render::raycast_parallel(ga, cam, tf, config, pool);
  const Image iz = render::raycast_parallel(gz, cam, tf, config, pool);
  ASSERT_EQ(ia.pixels().size(), iz.pixels().size());
  for (std::size_t p = 0; p < ia.pixels().size(); ++p) {
    ASSERT_EQ(ia.pixels()[p], iz.pixels()[p]) << "pixel " << p;
  }
}

TEST(Raycast, TracedMatchesParallelImage) {
  const Extents3D e = Extents3D::cube(16);
  Grid3D<float, ArrayOrderLayout> g(e);
  fill_ball(g);
  exec::ExecutionContext pool(2);
  const RenderConfig config{32, 32, 8, 0.7f, 0.98f};
  const auto tf = opaque_white();
  const auto cam = render::orbit_camera(1, 8, 16, 16, 16);
  const Image native = render::raycast_parallel(g, cam, tf, config, pool);

  memsim::Hierarchy h(memsim::tiny_test_platform(), 3);
  const Image traced = render::raycast_traced(g, cam, tf, config, h);
  for (std::size_t p = 0; p < native.pixels().size(); ++p) {
    ASSERT_EQ(native.pixels()[p], traced.pixels()[p]);
  }
  EXPECT_GT(h.total_accesses(), 0u);
}

TEST(Raycast, EarlyTerminationReducesWork) {
  const Extents3D e = Extents3D::cube(24);
  Grid3D<float, ArrayOrderLayout> g(e);
  fill_ball(g);
  const auto tf = opaque_white();
  const auto cam = render::orbit_camera(0, 8, 24, 24, 24);
  auto traced_accesses = [&](float threshold) {
    memsim::Hierarchy h(memsim::tiny_test_platform(), 1);
    const RenderConfig config{32, 32, 32, 0.5f, threshold};
    (void)render::raycast_traced(g, cam, tf, config, h);
    return h.total_accesses();
  };
  EXPECT_LT(traced_accesses(0.5f), traced_accesses(1.1f));
}

TEST(Raycast, ViewpointSensitivityIsArrayOrderSpecific) {
  // Fig. 4's effect in miniature: escapes from the private stack vary with
  // viewpoint under array order far more than under Z-order.
  const Extents3D e = Extents3D::cube(32);
  Grid3D<float, ArrayOrderLayout> ga(e);
  data::fill_combustion(ga);
  const auto gz = core::convert_layout<ZOrderLayout>(ga);
  const auto tf = TransferFunction::flame();
  const RenderConfig config{48, 48, 16, 0.75f, 1.1f};

  auto fills = [&](const auto& grid, unsigned viewpoint) {
    memsim::Hierarchy h(memsim::tiny_test_platform(), 2);
    const auto cam = render::orbit_camera(viewpoint, 8, 32, 32, 32);
    (void)render::raycast_traced(grid, cam, tf, config, h);
    return static_cast<double>(h.counter("L2_DATA_READ_MISS_MEM_FILL"));
  };

  const double a_aligned = fills(ga, 0);
  const double a_cross = fills(ga, 2);
  const double z_aligned = fills(gz, 0);
  const double z_cross = fills(gz, 2);
  const double a_ratio = a_cross / a_aligned;
  const double z_ratio = z_cross / z_aligned;
  EXPECT_GT(a_ratio, 1.15);  // array order degrades off-axis
  EXPECT_LT(std::abs(z_ratio - 1.0), std::abs(a_ratio - 1.0))
      << "z-order must be less viewpoint-sensitive (a: " << a_ratio
      << ", z: " << z_ratio << ")";
}

// ---------------------------------------------------------------------------
// Image IO
// ---------------------------------------------------------------------------

TEST(ImageIO, WritesValidPpm) {
  Image img(4, 2);
  img.at(0, 0) = Rgba{1, 0, 0, 1};
  img.at(3, 1) = Rgba{0, 1, 0, 1};
  const auto path = std::filesystem::temp_directory_path() / "sfcvis_test.ppm";
  render::write_ppm(path, img);
  std::ifstream in(path, std::ios::binary);
  std::string magic, dims1, dims2, maxval;
  in >> magic >> dims1 >> dims2 >> maxval;
  EXPECT_EQ(magic, "P6");
  EXPECT_EQ(dims1, "4");
  EXPECT_EQ(dims2, "2");
  EXPECT_EQ(maxval, "255");
  in.get();  // single whitespace after header
  std::vector<unsigned char> payload(4 * 2 * 3);
  in.read(reinterpret_cast<char*>(payload.data()), payload.size());
  EXPECT_EQ(in.gcount(), static_cast<std::streamsize>(payload.size()));
  EXPECT_EQ(payload[0], 255u);  // red pixel
  EXPECT_EQ(payload[1], 0u);
  EXPECT_EQ(payload[3 * 7 + 1], 255u);  // green pixel at (3,1)
}

TEST(ImageIO, ThrowsOnBadPath) {
  const Image img(2, 2);
  EXPECT_THROW(render::write_ppm("/nonexistent_dir_xyz/out.ppm", img), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Ray packets
// ---------------------------------------------------------------------------

namespace {

// Every pixel of a packet render must be bit-identical to the scalar
// render: packets change only how rays are batched, never the per-ray
// sample positions or arithmetic (the fuzz harness widens this check to
// all layouts and seeds; this is the fast deterministic slice).
void expect_packets_bit_identical(const RenderConfig& scalar_config) {
  Grid3D<float, ArrayOrderLayout> g(Extents3D::cube(32));
  sfcvis::data::fill_combustion(g);
  exec::ExecutionContext pool(2);
  const auto tf = TransferFunction::flame();
  const auto cam = render::orbit_camera(1, 8, 32, 32, 32);
  const Image base = render::raycast_parallel(g, cam, tf, scalar_config, pool);
  for (std::uint32_t k : {4u, 8u}) {
    RenderConfig packet_config = scalar_config;
    packet_config.packet_size = k;
    const Image img = render::raycast_parallel(g, cam, tf, packet_config, pool);
    ASSERT_EQ(img.pixels().size(), base.pixels().size());
    for (std::size_t p = 0; p < base.pixels().size(); ++p) {
      ASSERT_EQ(img.pixels()[p], base.pixels()[p])
          << "pixel " << p << " packet_size " << k;
    }
  }
}

}  // namespace

TEST(RayPackets, CompositeMatchesScalarBitExact) {
  RenderConfig config{48, 48, 16, 0.6f, 0.98f};
  expect_packets_bit_identical(config);
}

TEST(RayPackets, ShadedMatchesScalarBitExact) {
  RenderConfig config{48, 48, 16, 0.6f, 0.98f};
  config.shade = true;
  expect_packets_bit_identical(config);
  config.use_macrocells = true;
  config.macrocell_size = 8;
  expect_packets_bit_identical(config);
}

TEST(RayPackets, MipMatchesScalarBitExact) {
  RenderConfig config{48, 48, 16, 0.6f, 0.98f};
  config.mode = render::RenderMode::kMip;
  expect_packets_bit_identical(config);
  config.use_macrocells = true;
  expect_packets_bit_identical(config);
}

TEST(RayPackets, OddTileWidthsUseScalarRemainder) {
  // 13-wide tiles exercise the mixed packet/scalar row split.
  RenderConfig config{39, 26, 13, 0.7f, 0.9f};
  expect_packets_bit_identical(config);
}

TEST(RayPackets, StatsMatchScalarCounts) {
  Grid3D<float, ArrayOrderLayout> g(Extents3D::cube(32));
  sfcvis::data::fill_combustion(g);
  const auto tf = TransferFunction::flame();
  const auto cam = render::orbit_camera(2, 8, 32, 32, 32);
  RenderConfig config{32, 32, 16, 0.6f, 0.98f};
  config.use_macrocells = true;
  const auto cells = render::MacrocellGrid::build(g, config.macrocell_size);
  const core::PlainView view(g);
  const render::TileDecomposition tiles(config.image_width, config.image_height,
                                        config.tile_size);
  render::RayStats scalar_stats, packet_stats;
  Image scalar_img(config.image_width, config.image_height);
  Image packet_img(config.image_width, config.image_height);
  RenderConfig packet_config = config;
  packet_config.packet_size = 8;
  for (std::size_t t = 0; t < tiles.count(); ++t) {
    render::render_tile(view, cam, tf, config, scalar_img, tiles.bounds(t), &cells,
                        &scalar_stats);
    render::render_tile(view, cam, tf, packet_config, packet_img, tiles.bounds(t), &cells,
                        &packet_stats);
  }
  EXPECT_EQ(packet_stats.samples_taken, scalar_stats.samples_taken);
  EXPECT_EQ(packet_stats.samples_skipped, scalar_stats.samples_skipped);
  EXPECT_EQ(packet_stats.cells_visited, scalar_stats.cells_visited);
  EXPECT_EQ(packet_stats.cells_skipped, scalar_stats.cells_skipped);
}

TEST(RayPackets, RejectsInvalidPacketSize) {
  EXPECT_THROW(render::validate_packet_size(3), std::invalid_argument);
  EXPECT_THROW(render::validate_packet_size(16), std::invalid_argument);
  EXPECT_NO_THROW(render::validate_packet_size(1));
  EXPECT_NO_THROW(render::validate_packet_size(4));
  EXPECT_NO_THROW(render::validate_packet_size(8));
  Grid3D<float, ArrayOrderLayout> g(Extents3D::cube(8));
  exec::ExecutionContext pool(1);
  RenderConfig config{8, 8, 8, 0.5f, 0.98f};
  config.packet_size = 3;
  EXPECT_THROW(render::raycast_parallel(g, render::orbit_camera(0, 8, 8, 8, 8),
                                        TransferFunction::flame(), config, pool),
               std::invalid_argument);
}
