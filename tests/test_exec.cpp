// exec::ExecutionContext: backend selection, dispatch coverage, curve
// decomposition, the structure cache, and policy-driven allocation — the
// contract every migrated kernel driver now leans on.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "sfcvis/core/volume.hpp"
#include "sfcvis/exec/execution_context.hpp"
#include "sfcvis/exec/structure_cache.hpp"
#include "sfcvis/exec/trace_session.hpp"
#include "sfcvis/threads/omp_executor.hpp"
#include "sfcvis/trace/export.hpp"

namespace {

using namespace sfcvis;
using exec::Backend;
using exec::ExecOptions;
using exec::ExecutionContext;

TEST(Backend, ToStringAndParseRoundTrip) {
  EXPECT_STREQ(exec::to_string(Backend::kPool), "pool");
  EXPECT_STREQ(exec::to_string(Backend::kOpenMP), "openmp");
  EXPECT_EQ(exec::parse_backend("pool"), Backend::kPool);
  EXPECT_EQ(exec::parse_backend("pthreads"), Backend::kPool);
  EXPECT_EQ(exec::parse_backend("openmp"), Backend::kOpenMP);
  EXPECT_EQ(exec::parse_backend("omp"), Backend::kOpenMP);
  EXPECT_THROW((void)exec::parse_backend("tbb"), std::invalid_argument);
  EXPECT_THROW((void)exec::parse_backend(""), std::invalid_argument);
}

TEST(ExecutionContextTest, ResolvesThreadCount) {
  ExecutionContext three(3);
  EXPECT_EQ(three.size(), 3U);
  ExecutionContext def(0);
  EXPECT_GE(def.size(), 1U);
}

TEST(ExecutionContextTest, StaticDispatchCoversEveryItemOnce) {
  ExecutionContext ctx(3);
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> counts(n);
  ctx.parallel_static(n, [&](std::size_t item, unsigned tid) {
    ASSERT_LT(tid, ctx.size());
    counts[item].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "item " << i;
  }
}

TEST(ExecutionContextTest, DynamicDispatchCoversEveryItemOnce) {
  ExecutionContext ctx(4);
  const std::size_t n = 777;
  std::vector<std::atomic<int>> counts(n);
  ctx.parallel_dynamic(n, [&](std::size_t item, unsigned tid) {
    ASSERT_LT(tid, ctx.size());
    counts[item].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "item " << i;
  }
}

TEST(ExecutionContextTest, StaticStateMakesAtMostOneStatePerWorker) {
  ExecutionContext ctx(3);
  std::atomic<int> makes{0};
  const std::size_t n = 256;
  std::vector<std::atomic<int>> counts(n);
  ctx.parallel_static_state(
      n,
      [&](unsigned tid) {
        makes.fetch_add(1, std::memory_order_relaxed);
        return static_cast<int>(tid);
      },
      [&](int& state, std::size_t item, unsigned tid) {
        EXPECT_EQ(state, static_cast<int>(tid));
        counts[item].fetch_add(1, std::memory_order_relaxed);
      });
  EXPECT_GE(makes.load(), 1);
  EXPECT_LE(makes.load(), static_cast<int>(ctx.size()));
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "item " << i;
  }
}

TEST(ExecutionContextTest, CurveChunksScalesWithPaddingRatio) {
  ExecOptions opts;
  opts.threads = 3;
  opts.chunks_per_thread = 8;
  ExecutionContext ctx(opts);
  // Unpadded curve: threads * chunks_per_thread chunks.
  EXPECT_EQ(ctx.curve_chunks(1000, 1000), 24U);
  // Half the padded curve is holes: twice the chunks keeps the *logical*
  // work per chunk on target.
  EXPECT_EQ(ctx.curve_chunks(1000, 2000), 48U);
  // Degenerate inputs clamp to at least one chunk.
  EXPECT_EQ(ctx.curve_chunks(1, 0), 1U);
  EXPECT_GE(ctx.curve_chunks(0, 64), 1U);
}

TEST(ExecutionContextTest, FirstTouchFnCoversRangeExactlyOnce) {
  ExecutionContext ctx(3);
  const core::FirstTouchFn fn = ctx.first_touch_fn();
  const std::size_t count = 1013;  // prime: uneven split across 3 workers
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  fn(count, [&](std::size_t begin, std::size_t end) {
    const std::lock_guard<std::mutex> lock(mu);
    ranges.emplace_back(begin, end);
  });
  std::sort(ranges.begin(), ranges.end());
  std::size_t covered = 0;
  for (const auto& [begin, end] : ranges) {
    EXPECT_EQ(begin, covered) << "gap or overlap before " << begin;
    EXPECT_GT(end, begin);
    covered = end;
  }
  EXPECT_EQ(covered, count);
}

TEST(ExecutionContextTest, MakeVolumeAppliesContextMemoryPolicy) {
  ExecOptions opts;
  opts.threads = 2;
  opts.memory.first_touch = true;
  ExecutionContext ctx(opts);
  const core::AnyVolume v = ctx.make_volume(core::LayoutKind::kZOrder,
                                            core::Extents3D{20, 7, 5});
  const core::AllocReport& report = v.alloc_report();
  EXPECT_TRUE(report.first_touch_requested);
  EXPECT_TRUE(report.first_touch_applied);
  // First-touch is a placement detail: contents are still value-initialized,
  // padding included.
  for (std::size_t n = 0; n < v.capacity(); ++n) {
    ASSERT_EQ(v.data()[n], 0.0f) << "element " << n;
  }
}

TEST(ExecutionContextTest, OpenMPRequestHonouredOrReportedFallback) {
  ExecOptions opts;
  opts.threads = 2;
  opts.backend = Backend::kOpenMP;
  ExecutionContext ctx(opts);
  EXPECT_EQ(ctx.backend(), Backend::kOpenMP);
  if (threads::openmp_available()) {
    EXPECT_EQ(ctx.active_backend(), Backend::kOpenMP);
    EXPECT_TRUE(ctx.backend_note().empty());
  } else {
    EXPECT_EQ(ctx.active_backend(), Backend::kPool);
    EXPECT_FALSE(ctx.backend_note().empty());
  }
  // Dispatch works either way.
  std::atomic<std::size_t> sum{0};
  ctx.parallel_static(100, [&](std::size_t item, unsigned) {
    sum.fetch_add(item, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 4950U);
}

TEST(ExecutionContextTest, AffinityRequestIsRecorded) {
  ExecutionContext ctx(2, threads::Affinity::kCompact);
  EXPECT_EQ(ctx.affinity(), threads::Affinity::kCompact);
  std::atomic<int> ran{0};
  ctx.parallel_static(8, [&](std::size_t, unsigned) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ran.load(), 8);
  // Pinning may legitimately fail (cgroup restrictions); the accessor must
  // simply be callable and stable once the pool exists.
  const bool applied = ctx.affinity_applied();
  EXPECT_EQ(ctx.affinity_applied(), applied);
}

TEST(StructureCacheTest, HitsMissesAndInvalidate) {
  exec::StructureCache cache;
  int builds = 0;
  const int owner_a = 0, owner_b = 0;
  const auto build = [&] {
    ++builds;
    return 42;
  };
  const auto first = cache.get_or_build<int>(&owner_a, 7, build);
  EXPECT_EQ(*first, 42);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(cache.misses(), 1U);
  EXPECT_EQ(cache.hits(), 0U);

  const auto again = cache.get_or_build<int>(&owner_a, 7, build);
  EXPECT_EQ(again.get(), first.get());
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(cache.hits(), 1U);

  // Different parameter key or owner → separate entries.
  (void)cache.get_or_build<int>(&owner_a, 8, build);
  (void)cache.get_or_build<int>(&owner_b, 7, build);
  EXPECT_EQ(builds, 3);
  EXPECT_EQ(cache.size(), 3U);

  cache.invalidate(&owner_a);
  EXPECT_EQ(cache.size(), 1U);
  // Outstanding shared_ptrs survive invalidation.
  EXPECT_EQ(*first, 42);
  (void)cache.get_or_build<int>(&owner_a, 7, build);
  EXPECT_EQ(builds, 4);

  cache.clear();
  EXPECT_EQ(cache.size(), 0U);
}

TEST(StructureCacheTest, DistinguishesTypesUnderOneKey) {
  exec::StructureCache cache;
  const int owner = 0;
  const auto as_int = cache.get_or_build<int>(&owner, 1, [] { return 5; });
  const auto as_double = cache.get_or_build<double>(&owner, 1, [] { return 2.5; });
  EXPECT_EQ(*as_int, 5);
  EXPECT_EQ(*as_double, 2.5);
  EXPECT_EQ(cache.size(), 2U);
}

// ---------------------------------------------------------------------------
// TraceSession abnormal-exit flush: a run that dies with a report pending
// must still leave a valid run report on disk (atexit hook + best-effort
// signal handlers, src/sfcvis/exec/trace_session.cpp).
// ---------------------------------------------------------------------------

#if defined(__SANITIZE_THREAD__)
#define SFCVIS_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SFCVIS_TSAN 1
#endif
#endif
#ifndef SFCVIS_TSAN
#define SFCVIS_TSAN 0
#endif

// No pid in the name: the threadsafe death-test child re-execs the binary
// and recomputes this path, so it must agree with the parent's.
std::string flush_report_path(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          ("sfcvis_test_flush_" + std::string(tag) + ".json"))
      .string();
}

/// The child's half of a death test: open a session and die without
/// calling finish().
[[noreturn]] void die_with_pending_report(const std::string& path, int signo) {
  exec::TraceSession session("", path, false);
  trace::ReportTable table;
  table.name = "flush_test";
  table.title = "written by the flush hook";
  table.rows = {"r"};
  table.cols = {"c"};
  table.cells = {{1.0}};
  session.add_table(table);
  if (signo == 0) {
    std::exit(0);  // atexit path
  }
  (void)std::raise(signo);  // signal path: handler flushes, then re-raises
  std::abort();             // unreachable
}

void expect_flushed_report(const std::string& path) {
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path << " was not written by the flush hook";
  const std::string json((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(json.find("\"sfcvis_run_report\":1"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"flush_test\""), std::string::npos);
  if (std::system("python3 -c 'import json' > /dev/null 2>&1") == 0) {
    const std::string cmd = std::string("python3 \"") + SFCVIS_TOOLS_DIR +
                            "/trace_summary.py\" --validate \"" + path + "\"";
    EXPECT_EQ(std::system(cmd.c_str()), 0) << cmd;
  }
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

TEST(TraceSessionFlush, AtexitWritesPendingReport) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const std::string path = flush_report_path("atexit");
  std::error_code ec;
  std::filesystem::remove(path, ec);  // no stale file from an earlier run
  EXPECT_EXIT(die_with_pending_report(path, 0), ::testing::ExitedWithCode(0), "");
  expect_flushed_report(path);
}

TEST(TraceSessionFlush, SigtermWritesPendingReportAndDiesBySignal) {
#if SFCVIS_TSAN
  GTEST_SKIP() << "signal-path flush is not TSan-clean by design (best effort)";
#endif
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const std::string path = flush_report_path("sigterm");
  std::error_code ec;
  std::filesystem::remove(path, ec);  // no stale file from an earlier run
  EXPECT_EXIT(die_with_pending_report(path, SIGTERM),
              ::testing::KilledBySignal(SIGTERM), "");
  expect_flushed_report(path);
}

TEST(TraceSessionFlush, NormalFinishLeavesNothingForTheHooks) {
  // finish() clears the current-session pointer, so a later exit must not
  // rewrite (or double-write) the report. Exercised in-process: finish,
  // delete the file, and verify a manual hook-equivalent has nothing to do.
  const std::string path = flush_report_path("normal");
  {
    exec::TraceSession session("", path, false);
    session.finish();
  }
  EXPECT_TRUE(std::filesystem::exists(path));
  std::error_code ec;
  std::filesystem::remove(path, ec);
  EXPECT_EQ(exec::TraceSession::current(), nullptr);
}

}  // namespace
