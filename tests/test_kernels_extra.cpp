// Tests for the additional visualization kernels (median filter, gradient
// magnitude), the extra renderer modes (MIP, gradient shading), the
// Marschner-Lobb dataset, and pool affinity.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sfcvis/data/marschner_lobb.hpp"
#include "sfcvis/filters/gradient.hpp"
#include "sfcvis/filters/median.hpp"
#include "sfcvis/render/raycast.hpp"
#include "sfcvis/exec/execution_context.hpp"
#include "sfcvis/threads/pool.hpp"

namespace core = sfcvis::core;
namespace exec = sfcvis::exec;
namespace data = sfcvis::data;
namespace filters = sfcvis::filters;
namespace render = sfcvis::render;
namespace threads = sfcvis::threads;

using core::ArrayOrderLayout;
using core::Extents3D;
using core::Grid3D;
using core::ZOrderLayout;

// ---------------------------------------------------------------------------
// Median filter
// ---------------------------------------------------------------------------

TEST(Median, IdentityOnConstant) {
  const Extents3D e{8, 8, 8};
  Grid3D<float, ArrayOrderLayout> src(e), dst(e);
  src.fill_from([](auto, auto, auto) { return 0.3f; });
  exec::ExecutionContext pool(2);
  filters::median_filter(src, dst, 1, pool);
  dst.for_each_index([&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    ASSERT_EQ(dst.at(i, j, k), 0.3f);
  });
}

TEST(Median, RemovesImpulseNoiseCompletely) {
  // Salt-and-pepper spikes vanish under a median but survive a mean:
  // the defining property.
  const Extents3D e{12, 12, 12};
  Grid3D<float, ArrayOrderLayout> src(e), dst(e);
  src.fill_from([](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    const std::uint32_t h = (i * 73856093u) ^ (j * 19349663u) ^ (k * 83492791u);
    return (h % 29 == 0) ? 50.0f : 1.0f;  // sparse impulses
  });
  exec::ExecutionContext pool(2);
  filters::median_filter(src, dst, 1, pool);
  float peak = 0;
  dst.for_each_index([&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    peak = std::max(peak, dst.at(i, j, k));
  });
  EXPECT_EQ(peak, 1.0f);
}

TEST(Median, MatchesSortReference) {
  const Extents3D e{6, 5, 4};
  Grid3D<float, ArrayOrderLayout> src(e), dst(e);
  src.fill_from([](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    return std::sin(static_cast<float>(i * 7 + j * 3 + k * 11));
  });
  exec::ExecutionContext pool(2);
  filters::median_filter(src, dst, 1, pool);
  // Reference: gather and sort.
  src.for_each_index([&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    std::vector<float> taps;
    for (int dz = -1; dz <= 1; ++dz) {
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          taps.push_back(src.at_clamped(static_cast<std::int64_t>(i) + dx,
                                        static_cast<std::int64_t>(j) + dy,
                                        static_cast<std::int64_t>(k) + dz));
        }
      }
    }
    std::sort(taps.begin(), taps.end());
    ASSERT_EQ(dst.at(i, j, k), taps[13]) << i << "," << j << "," << k;
  });
}

TEST(Median, LayoutTransparent) {
  const Extents3D e{9, 7, 5};
  Grid3D<float, ArrayOrderLayout> src(e), from_a(e), from_z(e);
  src.fill_from([](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    return static_cast<float>((i * 31 + j * 17 + k * 7) % 23);
  });
  const auto src_z = core::convert_layout<ZOrderLayout>(src);
  exec::ExecutionContext pool(3);
  filters::median_filter(src, from_a, 2, pool);
  filters::median_filter(src_z, from_z, 2, pool);
  src.for_each_index([&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    ASSERT_EQ(from_a.at(i, j, k), from_z.at(i, j, k));
  });
}

// ---------------------------------------------------------------------------
// Gradient
// ---------------------------------------------------------------------------

TEST(Gradient, ExactOnLinearField) {
  const Extents3D e{8, 8, 8};
  Grid3D<float, ArrayOrderLayout> src(e);
  src.fill_from([](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    return 2.0f * static_cast<float>(i) - 3.0f * static_cast<float>(j) +
           0.5f * static_cast<float>(k);
  });
  const core::PlainView view(src);
  const auto g = filters::gradient_voxel(view, 4, 4, 4);
  EXPECT_FLOAT_EQ(g[0], 2.0f);
  EXPECT_FLOAT_EQ(g[1], -3.0f);
  EXPECT_FLOAT_EQ(g[2], 0.5f);
}

TEST(Gradient, MagnitudeFieldOnLinearRamp) {
  const Extents3D e{8, 8, 8};
  Grid3D<float, ArrayOrderLayout> src(e), mag(e);
  src.fill_from([](std::uint32_t i, auto, auto) { return 3.0f * static_cast<float>(i); });
  exec::ExecutionContext pool(2);
  filters::gradient_magnitude(src, mag, pool);
  // Interior voxels: |grad| = 3; border x voxels see a halved one-sided
  // difference.
  for (std::uint32_t k = 0; k < 8; ++k) {
    for (std::uint32_t j = 0; j < 8; ++j) {
      for (std::uint32_t i = 1; i < 7; ++i) {
        ASSERT_FLOAT_EQ(mag.at(i, j, k), 3.0f);
      }
      ASSERT_FLOAT_EQ(mag.at(0, j, k), 1.5f);
      ASSERT_FLOAT_EQ(mag.at(7, j, k), 1.5f);
    }
  }
}

TEST(Gradient, ZeroOnConstantField) {
  const Extents3D e{6, 6, 6};
  Grid3D<float, ArrayOrderLayout> src(e), mag(e);
  src.fill_from([](auto, auto, auto) { return 5.0f; });
  exec::ExecutionContext pool(2);
  filters::gradient_magnitude(src, mag, pool);
  mag.for_each_index([&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    ASSERT_EQ(mag.at(i, j, k), 0.0f);
  });
}

// ---------------------------------------------------------------------------
// Renderer modes
// ---------------------------------------------------------------------------

namespace {

void fill_half_bright(Grid3D<float, ArrayOrderLayout>& g) {
  const auto nz = g.extents().nz;
  g.fill_from([nz](std::uint32_t, std::uint32_t, std::uint32_t k) {
    return k < nz / 2 ? 0.2f : 0.9f;
  });
}

}  // namespace

TEST(RenderModes, MipPicksTheMaximumAlongTheRay) {
  const Extents3D e = Extents3D::cube(16);
  Grid3D<float, ArrayOrderLayout> g(e);
  fill_half_bright(g);
  const core::PlainView view(g);
  const render::TransferFunction tf({{0.0f, {0, 0, 0, 0}}, {1.0f, {1, 1, 1, 1}}});
  render::RenderConfig config;
  config.mode = render::RenderMode::kMip;
  config.step = 0.5f;
  // A ray along +z passes through both halves; MIP must classify 0.9.
  const render::Ray ray{{8.0f, 8.0f, -5.0f}, {0, 0, 1}};
  const auto out = render::trace_ray(view, ray, tf, config);
  EXPECT_NEAR(out.a, 0.9f, 0.02f);
  // A composite along the same ray saturates opacity instead.
  config.mode = render::RenderMode::kComposite;
  const auto composite = render::trace_ray(view, ray, tf, config);
  EXPECT_GT(composite.a, 0.95f);
}

TEST(RenderModes, MipIsViewDirectionInvariantForReversedRay) {
  const Extents3D e = Extents3D::cube(16);
  Grid3D<float, ArrayOrderLayout> g(e);
  fill_half_bright(g);
  const core::PlainView view(g);
  const render::TransferFunction tf({{0.0f, {0, 0, 0, 0}}, {1.0f, {1, 1, 1, 1}}});
  render::RenderConfig config;
  config.mode = render::RenderMode::kMip;
  const render::Ray forward{{8.0f, 8.0f, -5.0f}, {0, 0, 1}};
  const render::Ray backward{{8.0f, 8.0f, 20.0f}, {0, 0, -1}};
  const auto fa = render::trace_ray(view, forward, tf, config).a;
  const auto ba = render::trace_ray(view, backward, tf, config).a;
  EXPECT_NEAR(fa, ba, 1e-4f);
}

TEST(RenderModes, GradientShadingDarkensGrazingSurfaces) {
  // A ball lit by a headlight: the silhouette (normal perpendicular to the
  // ray) must be darker than the center (normal parallel to the ray).
  const Extents3D e = Extents3D::cube(32);
  Grid3D<float, ArrayOrderLayout> g(e);
  g.fill_from([&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    const float dx = static_cast<float>(i) - 15.5f;
    const float dy = static_cast<float>(j) - 15.5f;
    const float dz = static_cast<float>(k) - 15.5f;
    return (dx * dx + dy * dy + dz * dz) < 100.0f ? 1.0f : 0.0f;
  });
  exec::ExecutionContext pool(2);
  const render::TransferFunction tf(
      {{0.0f, {0, 0, 0, 0}}, {0.5f, {0, 0, 0, 0}}, {1.0f, {1, 1, 1, 0.9f}}});
  render::RenderConfig config{64, 64, 16, 0.5f, 0.98f};
  config.shade = true;
  config.ambient = 0.2f;
  const auto cam = render::orbit_camera(0, 8, 32, 32, 32);
  const auto img = render::raycast_parallel(g, cam, tf, config, pool);
  const float center = img.at(32, 32).r;
  // Probe just inside the silhouette: scan from center rightward for the
  // last lit pixel.
  float rim = center;
  for (std::uint32_t x = 32; x < 64; ++x) {
    if (img.at(x, 32).a > 0.3f) {
      rim = img.at(x, 32).r;
    }
  }
  EXPECT_GT(center, 1.5f * rim);
}

TEST(RenderModes, ShadingPreservesLayoutTransparency) {
  const Extents3D e = Extents3D::cube(16);
  Grid3D<float, ArrayOrderLayout> ga(e);
  data::fill_marschner_lobb(ga);
  const auto gz = core::convert_layout<ZOrderLayout>(ga);
  exec::ExecutionContext pool(2);
  const auto tf = render::TransferFunction::grayscale(0.0f, 1.0f);
  render::RenderConfig config{32, 32, 16, 0.6f, 0.98f};
  config.shade = true;
  const auto cam = render::orbit_camera(3, 8, 16, 16, 16);
  const auto ia = render::raycast_parallel(ga, cam, tf, config, pool);
  const auto iz = render::raycast_parallel(gz, cam, tf, config, pool);
  for (std::size_t p = 0; p < ia.pixels().size(); ++p) {
    ASSERT_EQ(ia.pixels()[p], iz.pixels()[p]);
  }
}

// ---------------------------------------------------------------------------
// Marschner-Lobb
// ---------------------------------------------------------------------------

TEST(MarschnerLobb, RangeAndKnownValues) {
  // At the domain center (x=y=z=0): r=0, rho=cos(2 pi fm), z-term = 1.
  const data::MarschnerLobbParams p;
  const float center = data::marschner_lobb(0.5f, 0.5f, 0.5f, p);
  const float expected =
      (1.0f + p.alpha * (1.0f + std::cos(2.0f * std::numbers::pi_v<float> * p.fm))) /
      (2.0f * (1.0f + p.alpha));
  EXPECT_NEAR(center, expected, 1e-5f);
  for (float u = 0.05f; u < 1.0f; u += 0.13f) {
    for (float v = 0.05f; v < 1.0f; v += 0.17f) {
      for (float w = 0.05f; w < 1.0f; w += 0.19f) {
        const float val = data::marschner_lobb(u, v, w);
        ASSERT_GE(val, 0.0f);
        ASSERT_LE(val, 1.0f);
      }
    }
  }
}

TEST(MarschnerLobb, HasRadialRipples) {
  // Along a radius at z = 0 the signal must oscillate (many local extrema)
  // — the property that makes it a reconstruction stress test.
  int sign_changes = 0;
  float prev = data::marschner_lobb(0.5f, 0.5f, 0.5f);
  float prev_delta = 0;
  for (int s = 1; s <= 200; ++s) {
    const float u = 0.5f + 0.45f * static_cast<float>(s) / 200.0f;
    const float val = data::marschner_lobb(u, 0.5f, 0.5f);
    const float delta = val - prev;
    if (delta * prev_delta < 0) {
      ++sign_changes;
    }
    prev = val;
    if (delta != 0) {
      prev_delta = delta;
    }
  }
  EXPECT_GE(sign_changes, 6);
}

TEST(MarschnerLobb, FillIsLayoutAgnostic) {
  const Extents3D e{16, 16, 16};
  Grid3D<float, ArrayOrderLayout> a(e);
  Grid3D<float, ZOrderLayout> z(e);
  data::fill_marschner_lobb(a);
  data::fill_marschner_lobb(z);
  a.for_each_index([&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    ASSERT_EQ(a.at(i, j, k), z.at(i, j, k));
  });
}

// ---------------------------------------------------------------------------
// Pool affinity
// ---------------------------------------------------------------------------

TEST(PoolAffinity, CompactPoolStillRunsJobs) {
  threads::Pool pool(4, threads::Affinity::kCompact);
  std::vector<std::atomic<int>> hits(4);
  pool.run([&](unsigned tid) { hits[tid].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
  // Whether pinning succeeded is host policy; the API must report a stable
  // answer, not crash.
  (void)pool.affinity_applied();
}

TEST(PoolAffinity, DefaultPoolReportsNoAffinity) {
  threads::Pool pool(2);
  EXPECT_FALSE(pool.affinity_applied());
}
