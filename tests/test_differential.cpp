// Tests for the sfcvis::verify differential-testing subsystem: the ULP /
// tolerance-tier machinery, the DiffReport oracle's first-divergence
// pinpointing, the deterministic fuzz RNG, and a fixed set of fuzz and
// metamorphic seeds run end-to-end (the CI fuzz gate runs many more
// through tools/fuzz_layouts; these pin a reproducible sample into ctest).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "sfcvis/core/grid.hpp"
#include "sfcvis/core/layout.hpp"
#include "sfcvis/render/image.hpp"
#include "sfcvis/verify/diff.hpp"
#include "sfcvis/verify/fuzz.hpp"
#include "sfcvis/verify/rng.hpp"

namespace core = sfcvis::core;
namespace render = sfcvis::render;
namespace verify = sfcvis::verify;

// ---------------------------------------------------------------------------
// ULP distance and tolerance tiers
// ---------------------------------------------------------------------------

TEST(UlpDistance, IdenticalAndSignedZero) {
  EXPECT_EQ(verify::ulp_distance(1.0f, 1.0f), 0u);
  EXPECT_EQ(verify::ulp_distance(0.0f, -0.0f), 0u);
  EXPECT_EQ(verify::ulp_distance(-3.5f, -3.5f), 0u);
}

TEST(UlpDistance, CountsRepresentableSteps) {
  const float one_up = std::nextafter(1.0f, 2.0f);
  EXPECT_EQ(verify::ulp_distance(1.0f, one_up), 1u);
  EXPECT_EQ(verify::ulp_distance(one_up, 1.0f), 1u);
  const float two_up = std::nextafter(one_up, 2.0f);
  EXPECT_EQ(verify::ulp_distance(1.0f, two_up), 2u);
  // Crossing zero: distance is the sum of steps on both sides.
  const float pos = std::nextafter(0.0f, 1.0f);
  const float neg = std::nextafter(-0.0f, -1.0f);
  EXPECT_EQ(verify::ulp_distance(neg, pos), 2u);
}

TEST(UlpDistance, NanIsMaximallyDistant) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_EQ(verify::ulp_distance(nan, 1.0f), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(verify::ulp_distance(1.0f, nan), std::numeric_limits<std::uint64_t>::max());
}

TEST(Tolerance, Tiers) {
  const float one_up = std::nextafter(1.0f, 2.0f);
  EXPECT_TRUE(verify::Tolerance::bit_identical().accepts(1.0f, 1.0f));
  EXPECT_FALSE(verify::Tolerance::bit_identical().accepts(1.0f, one_up));
  EXPECT_TRUE(verify::Tolerance::ulps(1).accepts(1.0f, one_up));
  EXPECT_FALSE(verify::Tolerance::ulps(1).accepts(1.0f, std::nextafter(one_up, 2.0f)));
  EXPECT_TRUE(verify::Tolerance::absolute(0.1f).accepts(1.0f, 1.05f));
  EXPECT_FALSE(verify::Tolerance::absolute(0.1f).accepts(1.0f, 1.2f));
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_FALSE(verify::Tolerance::absolute(0.1f).accepts(nan, nan));
}

// ---------------------------------------------------------------------------
// The DiffReport oracle
// ---------------------------------------------------------------------------

TEST(DiffReport, PinsFirstDivergentVoxelAcrossLayouts) {
  const core::Extents3D e{7, 5, 4};
  core::Grid3D<float, core::ArrayOrderLayout> a(e);
  a.fill_from([](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    return static_cast<float>(i + 10 * j + 100 * k);
  });
  auto z = core::convert_layout<core::ZOrderLayout>(a);

  // Identical contents compare clean under the strictest tier.
  const auto clean = verify::compare_grids(a, z, verify::Tolerance::bit_identical(), "clean");
  EXPECT_TRUE(clean.ok);
  EXPECT_EQ(clean.compared, e.size());
  EXPECT_EQ(clean.mismatches, 0u);

  // An injected single-voxel "layout bug" is pinned exactly: coordinates,
  // both values, and the mismatch count.
  z.at(3, 1, 2) += 0.5f;
  const auto report = verify::compare_grids(a, z, verify::Tolerance::bit_identical(), "bug");
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.mismatches, 1u);
  EXPECT_EQ(report.i, 3u);
  EXPECT_EQ(report.j, 1u);
  EXPECT_EQ(report.k, 2u);
  EXPECT_EQ(report.expected, a.at(3, 1, 2));
  EXPECT_EQ(report.actual, a.at(3, 1, 2) + 0.5f);
  EXPECT_NE(report.to_string().find("bug"), std::string::npos);
  EXPECT_NE(report.to_string().find("(3,1,2)"), std::string::npos);

  // The same divergence vanishes under a tier that allows it.
  EXPECT_TRUE(verify::compare_grids(a, z, verify::Tolerance::absolute(0.6f), "loose").ok);
}

TEST(DiffReport, FirstDivergenceIsInArrayOrder) {
  const core::Extents3D e{4, 4, 4};
  core::Grid3D<float, core::ArrayOrderLayout> a(e), b(e);
  b.at(2, 3, 1) = 1.0f;  // later in array order (i fastest)
  b.at(3, 0, 2) = 1.0f;  // larger k: even later
  b.at(1, 3, 1) = 1.0f;  // the earliest of the three
  const auto report = verify::compare_grids(a, b, verify::Tolerance::bit_identical(), "order");
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.mismatches, 3u);
  EXPECT_EQ(report.i, 1u);
  EXPECT_EQ(report.j, 3u);
  EXPECT_EQ(report.k, 1u);
}

TEST(DiffReport, ExtentsMismatchIsFailureNotUb) {
  core::Grid3D<float, core::ArrayOrderLayout> a(core::Extents3D{4, 4, 4});
  core::Grid3D<float, core::ArrayOrderLayout> b(core::Extents3D{4, 4, 5});
  const auto report = verify::compare_grids(a, b, verify::Tolerance::bit_identical(), "size");
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.context.find("extents mismatch"), std::string::npos);
}

TEST(DiffReport, MirroredImageComparison) {
  render::Image a(6, 2);
  render::Image b(6, 2);
  a.at(1, 0).r = 0.25f;
  b.at(4, 0).r = 0.25f;  // the x-mirror position of (1, 0)
  EXPECT_TRUE(verify::compare_images_mirrored_x(a, b, verify::Tolerance::bit_identical(),
                                                "mirror")
                  .ok);
  // The same pair compared unmirrored diverges at the first of the two
  // pixels, channel r (= 0).
  const auto direct =
      verify::compare_images(a, b, verify::Tolerance::bit_identical(), "direct");
  EXPECT_FALSE(direct.ok);
  EXPECT_EQ(direct.mismatches, 2u);
  EXPECT_EQ(direct.i, 1u);
  EXPECT_EQ(direct.j, 0u);
  EXPECT_EQ(direct.k, 0u);
}

// ---------------------------------------------------------------------------
// Deterministic RNG
// ---------------------------------------------------------------------------

TEST(SplitMix64, MatchesPublishedVectors) {
  // Known-answer outputs of SplitMix64 from seed 0 (Steele, Lea & Flood
  // 2014; the same vectors the xoshiro reference code ships). If these
  // ever fail, fuzz seeds stop reproducing across machines.
  verify::SplitMix64 rng(0);
  EXPECT_EQ(rng.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(rng.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(rng.next(), 0x06c45d188009454fULL);
}

TEST(SplitMix64, DerivedDrawsStayInRange) {
  verify::SplitMix64 rng(123);
  for (int n = 0; n < 1000; ++n) {
    const float u = rng.unit_float();
    EXPECT_GE(u, 0.0f);
    EXPECT_LT(u, 1.0f);
    EXPECT_LT(rng.below(7), 7u);
    const auto r = rng.range(3, 9);
    EXPECT_GE(r, 3u);
    EXPECT_LE(r, 9u);
    const float f = rng.uniform(-1.5f, 2.5f);
    EXPECT_GE(f, -1.5f);
    EXPECT_LT(f, 2.5f);
  }
}

TEST(HashCoord, DeterministicAndCoordinateSensitive) {
  EXPECT_EQ(verify::hash_coord(42, 1, 2, 3), verify::hash_coord(42, 1, 2, 3));
  EXPECT_NE(verify::hash_coord(42, 1, 2, 3), verify::hash_coord(42, 2, 1, 3));
  EXPECT_NE(verify::hash_coord(42, 1, 2, 3), verify::hash_coord(43, 1, 2, 3));
  const float u = verify::hash_unit(7, 5, 6, 7);
  EXPECT_GE(u, 0.0f);
  EXPECT_LT(u, 1.0f);
}

// ---------------------------------------------------------------------------
// End-to-end fuzz and metamorphic seeds
// ---------------------------------------------------------------------------

namespace {

void expect_summary_clean(const verify::FuzzSummary& summary) {
  EXPECT_TRUE(summary.ok()) << "seed " << summary.seed << " (" << summary.description
                            << ") produced " << summary.failures.size() << " divergences";
  for (const auto& failure : summary.failures) {
    ADD_FAILURE() << failure.to_string();
  }
  EXPECT_GT(summary.checks, 0u);
}

}  // namespace

TEST(DifferentialFuzz, FixedQuickSeedsAreDivergenceFree) {
  const verify::FuzzOptions opts{.quick = true};
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    expect_summary_clean(verify::run_fuzz_case(seed, opts));
  }
}

TEST(DifferentialFuzz, MetamorphicSeedsHoldInvariants) {
  const verify::FuzzOptions opts{.quick = true};
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    expect_summary_clean(verify::run_metamorphic_case(seed, opts));
  }
}

TEST(DifferentialFuzz, CasesAreReproducible) {
  const verify::FuzzOptions opts{.quick = true};
  const auto first = verify::run_fuzz_case(17, opts);
  const auto second = verify::run_fuzz_case(17, opts);
  EXPECT_EQ(first.description, second.description);
  EXPECT_EQ(first.checks, second.checks);
  EXPECT_EQ(first.extents, second.extents);
  const auto meta1 = verify::run_metamorphic_case(17, opts);
  const auto meta2 = verify::run_metamorphic_case(17, opts);
  EXPECT_EQ(meta1.description, meta2.description);
  EXPECT_EQ(meta1.checks, meta2.checks);
}

TEST(DifferentialFuzz, DistinctSeedsGenerateDistinctCases) {
  const verify::FuzzOptions opts{.quick = true};
  // Not a tautology: a seeding bug (e.g. ignoring the seed) would make
  // every case identical and silently collapse the fuzz space to one case.
  int distinct = 0;
  const auto base = verify::run_fuzz_case(0, opts);
  for (std::uint64_t seed = 1; seed < 6; ++seed) {
    if (verify::run_fuzz_case(seed, opts).description != base.description) {
      ++distinct;
    }
  }
  EXPECT_GT(distinct, 0);
}
