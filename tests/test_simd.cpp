// Per-op tests for core/simd.hpp, the width-agnostic vector layer under
// the explicit filter tap loops and the ray-packet raycaster. They run on
// whatever backend the build selected (AVX-512 / AVX2 / NEON / scalar, see
// simd::active_isa()) and a CI leg re-runs them with
// -DSFCVIS_FORCE_SCALAR_SIMD=ON, so both the native and fallback paths
// stay pinned. Every width {4, 8, 16} is exercised on every build — widths
// the ISA lacks are composed from halves and must behave identically.
//
// The load-bearing assertions are the *bit-identity* ones: the kernels
// rely on vector ops (including fast_exp_neg and mul_add's contraction
// behavior) matching scalar expressions of the same shape lane-for-lane.
#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "sfcvis/core/simd.hpp"
#include "sfcvis/filters/fastmath.hpp"

namespace simd = sfcvis::simd;

namespace {

template <int N>
std::array<float, N> iota_lanes(float base, float stride) {
  std::array<float, N> a;
  for (int i = 0; i < N; ++i) {
    a[static_cast<std::size_t>(i)] = base + stride * static_cast<float>(i);
  }
  return a;
}

/// Deterministic "noise" in (0, 1) — same hash family as the test volumes.
float hash01(std::uint32_t i) {
  const std::uint32_t h = (i * 73856093u) ^ ((i + 7u) * 19349663u);
  return static_cast<float>(h % 100000u) / 100000.0f;
}

template <int N>
void expect_lanes_eq(const simd::vfloat<N>& v, const std::array<float, N>& want,
                     const char* what) {
  const auto got = v.to_array();
  for (int i = 0; i < N; ++i) {
    const auto s = static_cast<std::size_t>(i);
    EXPECT_EQ(std::bit_cast<std::uint32_t>(got[s]),
              std::bit_cast<std::uint32_t>(want[s]))
        << what << " lane " << i << ": " << got[s] << " vs " << want[s];
  }
}

// ---------------------------------------------------------------------------
// The per-width suite. Instantiated for N = 4, 8, 16 below.
// ---------------------------------------------------------------------------

template <int N>
void lane_arithmetic_suite() {
  using VF = simd::vfloat<N>;
  const auto xs = iota_lanes<N>(1.25f, 0.75f);
  const auto ys = iota_lanes<N>(-3.0f, 1.125f);
  const VF x = VF::from_array(xs);
  const VF y = VF::from_array(ys);

  std::array<float, N> want;
  for (int i = 0; i < N; ++i) {
    const auto s = static_cast<std::size_t>(i);
    want[s] = xs[s] + ys[s];
  }
  expect_lanes_eq<N>(x + y, want, "add");
  for (int i = 0; i < N; ++i) {
    const auto s = static_cast<std::size_t>(i);
    want[s] = xs[s] - ys[s];
  }
  expect_lanes_eq<N>(x - y, want, "sub");
  for (int i = 0; i < N; ++i) {
    const auto s = static_cast<std::size_t>(i);
    want[s] = xs[s] * ys[s];
  }
  expect_lanes_eq<N>(x * y, want, "mul");
  for (int i = 0; i < N; ++i) {
    const auto s = static_cast<std::size_t>(i);
    want[s] = xs[s] / ys[s];
  }
  expect_lanes_eq<N>(x / y, want, "div");
  for (int i = 0; i < N; ++i) {
    const auto s = static_cast<std::size_t>(i);
    want[s] = -xs[s];
  }
  expect_lanes_eq<N>(-x, want, "neg");

  // Unary ops are the IEEE operations — bit-equal to their std:: twins.
  for (int i = 0; i < N; ++i) {
    const auto s = static_cast<std::size_t>(i);
    want[s] = std::fabs(ys[s]);
  }
  expect_lanes_eq<N>(vabs(y), want, "abs");
  for (int i = 0; i < N; ++i) {
    const auto s = static_cast<std::size_t>(i);
    want[s] = std::sqrt(xs[s]);
  }
  expect_lanes_eq<N>(vsqrt(x), want, "sqrt");
  for (int i = 0; i < N; ++i) {
    const auto s = static_cast<std::size_t>(i);
    want[s] = std::floor(ys[s]);
  }
  expect_lanes_eq<N>(vfloor(y), want, "floor");

  // fmadd is explicitly fused: one rounding, same as std::fma.
  const VF c = VF::broadcast(0.3125f);
  for (int i = 0; i < N; ++i) {
    const auto s = static_cast<std::size_t>(i);
    want[s] = std::fma(xs[s], ys[s], 0.3125f);
  }
  expect_lanes_eq<N>(fmadd(x, y, c), want, "fmadd");

  // -0 negation must be an exact sign flip, not 0 - x.
  const auto nz = (-VF::zero()).to_array();
  for (int i = 0; i < N; ++i) {
    EXPECT_EQ(std::bit_cast<std::uint32_t>(nz[static_cast<std::size_t>(i)]),
              std::bit_cast<std::uint32_t>(-0.0f));
  }
}

template <int N>
void min_max_semantics_suite() {
  using VF = simd::vfloat<N>;
  // vmin/vmax mirror std::min/std::max — including which operand wins on
  // equality (ties keep `a`), which x86 minps/maxps get wrong for +/-0.
  std::array<float, N> as, bs;
  for (int i = 0; i < N; ++i) {
    const auto s = static_cast<std::size_t>(i);
    as[s] = (i % 3 == 0) ? -0.0f : (static_cast<float>(i) - 2.0f);
    bs[s] = (i % 3 == 0) ? 0.0f : (1.5f - static_cast<float>(i));
  }
  const VF a = VF::from_array(as);
  const VF b = VF::from_array(bs);
  std::array<float, N> want;
  for (int i = 0; i < N; ++i) {
    const auto s = static_cast<std::size_t>(i);
    want[s] = std::min(as[s], bs[s]);
  }
  expect_lanes_eq<N>(vmin(a, b), want, "min");
  for (int i = 0; i < N; ++i) {
    const auto s = static_cast<std::size_t>(i);
    want[s] = std::max(as[s], bs[s]);
  }
  expect_lanes_eq<N>(vmax(a, b), want, "max");
}

template <int N>
void mask_select_suite() {
  using VF = simd::vfloat<N>;
  using VM = simd::vmask<N>;
  const unsigned full = (N == 32) ? ~0u : ((1u << N) - 1u);

  // from_bits/to_bits round-trip every pattern for N=4/8; a stride of
  // patterns for N=16 to keep runtime sane.
  const unsigned step = N <= 8 ? 1u : 257u;
  for (unsigned bits = 0; bits <= full; bits += step) {
    EXPECT_EQ(to_bits(VM::from_bits(bits)), bits);
  }
  EXPECT_EQ(to_bits(VM::from_bits(full)), full);
  EXPECT_FALSE(any(VM::from_bits(0)));
  EXPECT_TRUE(any(VM::from_bits(1u << (N - 1))));
  EXPECT_TRUE(all(VM::from_bits(full)));
  EXPECT_FALSE(all(VM::from_bits(full >> 1)));

  const unsigned pa = full & 0xA5A5u;
  const unsigned pb = full & 0x3CC3u;
  EXPECT_EQ(to_bits(VM::from_bits(pa) & VM::from_bits(pb)), pa & pb);
  EXPECT_EQ(to_bits(VM::from_bits(pa) | VM::from_bits(pb)), pa | pb);
  EXPECT_EQ(to_bits(andnot(VM::from_bits(pa), VM::from_bits(pb))), pa & ~pb);

  // Comparisons feed masks; select picks `a` exactly where the mask is set.
  const auto xs = iota_lanes<N>(0.0f, 1.0f);
  const VF x = VF::from_array(xs);
  const VF mid = VF::broadcast(static_cast<float>(N) / 2.0f);
  const unsigned lo_half = (1u << (N / 2)) - 1u;
  EXPECT_EQ(to_bits(lt(x, mid)), lo_half);
  EXPECT_EQ(to_bits(ge(x, mid)), full & ~lo_half);
  EXPECT_EQ(to_bits(le(x, mid)), (1u << (N / 2 + 1)) - 1u);
  EXPECT_EQ(to_bits(gt(x, mid)), full & ~((1u << (N / 2 + 1)) - 1u));

  const VF ones = VF::broadcast(1.0f);
  const VF twos = VF::broadcast(2.0f);
  const auto sel = select(VM::from_bits(pa), ones, twos).to_array();
  for (int i = 0; i < N; ++i) {
    const float want = ((pa >> i) & 1u) != 0 ? 1.0f : 2.0f;
    EXPECT_EQ(sel[static_cast<std::size_t>(i)], want) << "select lane " << i;
  }
}

template <int N>
void load_store_suite() {
  using VF = simd::vfloat<N>;
  // Unaligned source with sentinels so masked loads can't over-read lanes
  // into the result.
  std::vector<float> buf(static_cast<std::size_t>(N) + 8, -99.0f);
  for (int i = 0; i < N; ++i) {
    buf[static_cast<std::size_t>(i) + 1] = static_cast<float>(i) + 0.5f;
  }
  const float* p = buf.data() + 1;

  const auto full = VF::loadu(p).to_array();
  for (int i = 0; i < N; ++i) {
    EXPECT_EQ(full[static_cast<std::size_t>(i)], static_cast<float>(i) + 0.5f);
  }

  // Every tail length: lanes [0, n) from memory, lanes [n, N) exactly +0.
  for (int n = 0; n <= N; ++n) {
    const auto got = VF::loadu_masked(p, n).to_array();
    for (int i = 0; i < N; ++i) {
      const auto s = static_cast<std::size_t>(i);
      if (i < n) {
        EXPECT_EQ(got[s], static_cast<float>(i) + 0.5f) << "n=" << n;
      } else {
        EXPECT_EQ(std::bit_cast<std::uint32_t>(got[s]), 0u) << "n=" << n;
      }
    }
  }

  std::vector<float> out(static_cast<std::size_t>(N) + 2, -1.0f);
  VF::loadu(p).storeu(out.data() + 1);
  for (int i = 0; i < N; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i) + 1], static_cast<float>(i) + 0.5f);
  }
  EXPECT_EQ(out.front(), -1.0f);
  EXPECT_EQ(out.back(), -1.0f);
}

template <int N>
void int_conversion_suite() {
  using VF = simd::vfloat<N>;
  using VI = simd::vint<N>;

  // trunc_to_int truncates toward zero, like static_cast<int32>.
  std::array<float, N> xs;
  for (int i = 0; i < N; ++i) {
    xs[static_cast<std::size_t>(i)] =
        (static_cast<float>(i) - static_cast<float>(N) / 2.0f) * 1.75f;
  }
  const auto ti = trunc_to_int(VF::from_array(xs)).to_array();
  for (int i = 0; i < N; ++i) {
    const auto s = static_cast<std::size_t>(i);
    EXPECT_EQ(ti[s], static_cast<std::int32_t>(xs[s])) << "lane " << i;
  }

  const auto bi = VI::broadcast(-7).to_array();
  for (int i = 0; i < N; ++i) {
    EXPECT_EQ(bi[static_cast<std::size_t>(i)], -7);
  }

  // vint add + shift + bit reinterpretation: the fast_exp_neg exponent
  // construction, checked against the scalar bit_cast expression.
  const VI n = trunc_to_int(VF::from_array(iota_lanes<N>(-5.0f, 1.0f)));
  const auto scale = float_bits((n + VI::broadcast(127)) << 23).to_array();
  for (int i = 0; i < N; ++i) {
    const auto s = static_cast<std::size_t>(i);
    const auto ni = static_cast<std::int32_t>(-5 + i);
    const float want =
        std::bit_cast<float>(static_cast<std::uint32_t>(ni + 127) << 23);
    EXPECT_EQ(std::bit_cast<std::uint32_t>(scale[s]),
              std::bit_cast<std::uint32_t>(want))
        << "lane " << i;
  }

  const auto tf = to_float(n).to_array();
  for (int i = 0; i < N; ++i) {
    EXPECT_EQ(tf[static_cast<std::size_t>(i)], static_cast<float>(-5 + i));
  }
}

template <int N>
void gather_suite() {
  using VF = simd::vfloat<N>;
  using VI = simd::vint<N>;
  using VM = simd::vmask<N>;

  std::vector<float> table(64);
  for (std::size_t i = 0; i < table.size(); ++i) {
    table[i] = static_cast<float>(i) * 1.25f + 0.125f;
  }

  // Indices hitting both ends of the table (edge lanes) and the middle.
  std::array<std::int32_t, N> idx;
  for (int i = 0; i < N; ++i) {
    idx[static_cast<std::size_t>(i)] =
        (i == 0) ? 0 : (i == 1 ? 63 : (i * 7) % 64);
  }
  VI vidx = VI::broadcast(0);
  {
    // Build the index vector via the float path (trunc) — there is no
    // int loadu in the API on purpose; kernels derive indices arithmetically.
    std::array<float, N> fidx;
    for (int i = 0; i < N; ++i) {
      const auto s = static_cast<std::size_t>(i);
      fidx[s] = static_cast<float>(idx[s]);
    }
    vidx = trunc_to_int(VF::from_array(fidx));
  }

  const auto got = gather(table.data(), vidx).to_array();
  for (int i = 0; i < N; ++i) {
    const auto s = static_cast<std::size_t>(i);
    EXPECT_EQ(got[s], table[static_cast<std::size_t>(idx[s])]) << "lane " << i;
  }

  // Masked gather: inactive lanes keep src bit-for-bit (edge lanes 0 and
  // N-1 masked off to cover both mask ends).
  const unsigned full = (1u << N) - 1u;
  const unsigned mbits = full & ~1u & ~(1u << (N - 1));
  const VF src = VF::broadcast(-123.5f);
  const auto mg =
      gather_masked(table.data(), vidx, VM::from_bits(mbits), src).to_array();
  for (int i = 0; i < N; ++i) {
    const auto s = static_cast<std::size_t>(i);
    const float want = ((mbits >> i) & 1u) != 0
                           ? table[static_cast<std::size_t>(idx[s])]
                           : -123.5f;
    EXPECT_EQ(mg[s], want) << "lane " << i;
  }
}

template <int N>
void reduce_suite() {
  using VF = simd::vfloat<N>;
  // Magnitude-skewed lanes make the sum order-sensitive; reduce_add must
  // match the sequential lane 0..N-1 loop exactly on every backend.
  std::array<float, N> xs;
  for (int i = 0; i < N; ++i) {
    xs[static_cast<std::size_t>(i)] =
        (i % 2 == 0 ? 1.0e6f : 1.0f) + hash01(static_cast<std::uint32_t>(i));
  }
  float want = 0.0f;
  for (int i = 0; i < N; ++i) {
    want += xs[static_cast<std::size_t>(i)];
  }
  EXPECT_EQ(reduce_add(VF::from_array(xs)), want);
}

template <int N>
void fast_exp_neg_suite() {
  using VF = simd::vfloat<N>;
  // Lane-exact twin of filters::fast_exp_neg: sweep the bilateral LUT
  // domain u in [0, 16] densely, plus the far tail out to the underflow
  // clamp. Bit-identity, not a tolerance — the SIMD/scalar differential
  // fuzz depends on it.
  std::array<float, N> us;
  int lane = 0;
  auto flush = [&] {
    for (int i = lane; i < N; ++i) {
      us[static_cast<std::size_t>(i)] = 0.0f;  // pad; still a valid input
    }
    const auto got = simd::fast_exp_neg(VF::from_array(us)).to_array();
    for (int i = 0; i < lane; ++i) {
      const auto s = static_cast<std::size_t>(i);
      const float want = sfcvis::filters::fast_exp_neg(us[s]);
      ASSERT_EQ(std::bit_cast<std::uint32_t>(got[s]),
                std::bit_cast<std::uint32_t>(want))
          << "u=" << us[s] << " got " << got[s] << " want " << want;
    }
    lane = 0;
  };
  for (int step = 0; step <= 16000; ++step) {
    us[static_cast<std::size_t>(lane++)] = static_cast<float>(step) * 1e-3f;
    if (lane == N) {
      flush();
    }
  }
  for (float u = 16.0f; u <= 130.0f; u += 0.37f) {
    us[static_cast<std::size_t>(lane++)] = u;
    if (lane == N) {
      flush();
    }
  }
  flush();
}

}  // namespace

TEST(Simd, ReportsBackend) {
  const char* isa = simd::active_isa();
  ASSERT_NE(isa, nullptr);
  EXPECT_TRUE(simd::kNativeLanes == 4 || simd::kNativeLanes == 8 ||
              simd::kNativeLanes == 16)
      << simd::kNativeLanes;
#if defined(SFCVIS_SIMD_FORCE_SCALAR)
  EXPECT_STREQ(isa, "scalar (forced)");
  EXPECT_EQ(simd::kNativeLanes, 4);
#endif
}

TEST(Simd, LaneArithmeticWidth4) { lane_arithmetic_suite<4>(); }
TEST(Simd, LaneArithmeticWidth8) { lane_arithmetic_suite<8>(); }
TEST(Simd, LaneArithmeticWidth16) { lane_arithmetic_suite<16>(); }

TEST(Simd, MinMaxStdSemanticsWidth4) { min_max_semantics_suite<4>(); }
TEST(Simd, MinMaxStdSemanticsWidth8) { min_max_semantics_suite<8>(); }
TEST(Simd, MinMaxStdSemanticsWidth16) { min_max_semantics_suite<16>(); }

TEST(Simd, MaskAndSelectWidth4) { mask_select_suite<4>(); }
TEST(Simd, MaskAndSelectWidth8) { mask_select_suite<8>(); }
TEST(Simd, MaskAndSelectWidth16) { mask_select_suite<16>(); }

TEST(Simd, LoadStoreMaskedTailsWidth4) { load_store_suite<4>(); }
TEST(Simd, LoadStoreMaskedTailsWidth8) { load_store_suite<8>(); }
TEST(Simd, LoadStoreMaskedTailsWidth16) { load_store_suite<16>(); }

TEST(Simd, IntConversionsWidth4) { int_conversion_suite<4>(); }
TEST(Simd, IntConversionsWidth8) { int_conversion_suite<8>(); }
TEST(Simd, IntConversionsWidth16) { int_conversion_suite<16>(); }

TEST(Simd, GatherEdgeLanesWidth4) { gather_suite<4>(); }
TEST(Simd, GatherEdgeLanesWidth8) { gather_suite<8>(); }
TEST(Simd, GatherEdgeLanesWidth16) { gather_suite<16>(); }

TEST(Simd, ReduceAddSequentialWidth4) { reduce_suite<4>(); }
TEST(Simd, ReduceAddSequentialWidth8) { reduce_suite<8>(); }
TEST(Simd, ReduceAddSequentialWidth16) { reduce_suite<16>(); }

TEST(Simd, FastExpNegBitIdenticalToScalarWidth4) { fast_exp_neg_suite<4>(); }
TEST(Simd, FastExpNegBitIdenticalToScalarWidth8) { fast_exp_neg_suite<8>(); }
TEST(Simd, FastExpNegBitIdenticalToScalarWidth16) { fast_exp_neg_suite<16>(); }

TEST(Simd, MulAddIsAnAdmissibleContraction) {
  // mul_add computes `a*b + c` under the compiler's contraction rules, so
  // per lane the value must be one of the two admissible roundings: the
  // fused fma or the separately-rounded mul+add. (It cannot be pinned to
  // either — -ffp-contract=fast contracts opportunistically, e.g. constant
  // folding evaluates unfused while runtime code fuses. The kernels that
  // need scalar/vector agreement get it from matching *runtime* expression
  // shapes, which the differential fuzz and the FastExpNegBitIdentical
  // tests above verify end to end; fmadd is pinned to std::fma.)
  constexpr int N = simd::kNativeLanes;
  using VF = simd::vfloat<N>;
  std::array<float, N> as, bs, cs;
  for (int i = 0; i < N; ++i) {
    const auto s = static_cast<std::size_t>(i);
    as[s] = 1.0f + hash01(static_cast<std::uint32_t>(3 * i));
    bs[s] = 1.0f + hash01(static_cast<std::uint32_t>(3 * i + 1));
    cs[s] = hash01(static_cast<std::uint32_t>(3 * i + 2));
  }
  const auto got =
      mul_add(VF::from_array(as), VF::from_array(bs), VF::from_array(cs))
          .to_array();
  for (int i = 0; i < N; ++i) {
    const auto s = static_cast<std::size_t>(i);
    const float fused = std::fma(as[s], bs[s], cs[s]);
    // Separately-rounded reference; volatile keeps the compiler from
    // re-contracting it into a second fma.
    volatile float prod = as[s] * bs[s];
    const float unfused = prod + cs[s];
    const auto bits = std::bit_cast<std::uint32_t>(got[s]);
    EXPECT_TRUE(bits == std::bit_cast<std::uint32_t>(fused) ||
                bits == std::bit_cast<std::uint32_t>(unfused))
        << "lane " << i << ": " << got[s] << " is neither " << fused << " nor "
        << unfused;
  }
}
