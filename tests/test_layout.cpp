// Tests for the layout policies (src/sfcvis/core/layout.hpp,
// zorder_tables.*): bijectivity, capacity, padding, and the locality
// ordering the paper relies on.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "sfcvis/core/gmorton.hpp"
#include "sfcvis/core/layout.hpp"
#include "sfcvis/core/morton.hpp"

namespace core = sfcvis::core;

using core::ArrayOrderLayout;
using core::Extents3D;
using core::GeneralizedMortonLayout;
using core::HilbertLayout;
using core::TiledLayout;
using core::ZOrderLayout;

// ---------------------------------------------------------------------------
// Typed bijectivity / bounds tests across all layout policies
// ---------------------------------------------------------------------------

template <class L>
class LayoutTypedTest : public ::testing::Test {};

using AllLayouts = ::testing::Types<ArrayOrderLayout, ZOrderLayout, TiledLayout,
                                    HilbertLayout, GeneralizedMortonLayout>;
TYPED_TEST_SUITE(LayoutTypedTest, AllLayouts);

TYPED_TEST(LayoutTypedTest, InjectiveAndInBoundsOnCube) {
  const Extents3D e = Extents3D::cube(16);
  const TypeParam layout(e);
  std::vector<bool> seen(layout.required_capacity(), false);
  for (std::uint32_t k = 0; k < e.nz; ++k) {
    for (std::uint32_t j = 0; j < e.ny; ++j) {
      for (std::uint32_t i = 0; i < e.nx; ++i) {
        const std::size_t idx = layout.index(i, j, k);
        ASSERT_LT(idx, layout.required_capacity());
        ASSERT_FALSE(seen[idx]) << TypeParam::name() << " collision at " << idx;
        seen[idx] = true;
      }
    }
  }
}

TYPED_TEST(LayoutTypedTest, InjectiveOnAnisotropicExtents) {
  const Extents3D e{20, 7, 5};  // deliberately non-power-of-two
  const TypeParam layout(e);
  std::vector<bool> seen(layout.required_capacity(), false);
  for (std::uint32_t k = 0; k < e.nz; ++k) {
    for (std::uint32_t j = 0; j < e.ny; ++j) {
      for (std::uint32_t i = 0; i < e.nx; ++i) {
        const std::size_t idx = layout.index(i, j, k);
        ASSERT_LT(idx, layout.required_capacity());
        ASSERT_FALSE(seen[idx]);
        seen[idx] = true;
      }
    }
  }
}

TYPED_TEST(LayoutTypedTest, CapacityAtLeastLogicalSize) {
  for (const Extents3D e : {Extents3D{8, 8, 8}, Extents3D{5, 9, 3}, Extents3D{64, 32, 16},
                            Extents3D{1, 1, 1}, Extents3D{100, 1, 1}}) {
    const TypeParam layout(e);
    EXPECT_GE(layout.required_capacity(), e.size()) << TypeParam::name();
    EXPECT_EQ(layout.extents(), e);
  }
}

TYPED_TEST(LayoutTypedTest, RejectsZeroExtent) {
  EXPECT_THROW(TypeParam(Extents3D{0, 4, 4}), std::invalid_argument);
  EXPECT_THROW(TypeParam(Extents3D{4, 0, 4}), std::invalid_argument);
  EXPECT_THROW(TypeParam(Extents3D{4, 4, 0}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Array order specifics
// ---------------------------------------------------------------------------

TEST(ArrayOrder, MatchesClosedForm) {
  const Extents3D e{10, 20, 30};
  const ArrayOrderLayout layout(e);
  EXPECT_EQ(layout.index(0, 0, 0), 0u);
  EXPECT_EQ(layout.index(1, 0, 0), 1u);
  EXPECT_EQ(layout.index(0, 1, 0), 10u);
  EXPECT_EQ(layout.index(0, 0, 1), 200u);
  EXPECT_EQ(layout.index(9, 19, 29), e.size() - 1);
  EXPECT_EQ(layout.required_capacity(), e.size());
}

TEST(ArrayOrder, NoPaddingEver) {
  for (const Extents3D e : {Extents3D{7, 13, 3}, Extents3D{512, 512, 512}}) {
    EXPECT_EQ(ArrayOrderLayout(e).required_capacity(), e.size());
  }
}

// ---------------------------------------------------------------------------
// Z order specifics
// ---------------------------------------------------------------------------

TEST(ZOrder, MatchesMortonOnPow2Cube) {
  const Extents3D e = Extents3D::cube(32);
  const ZOrderLayout layout(e);
  for (std::uint32_t k = 0; k < e.nz; ++k) {
    for (std::uint32_t j = 0; j < e.ny; ++j) {
      for (std::uint32_t i = 0; i < e.nx; ++i) {
        ASSERT_EQ(layout.index(i, j, k), core::morton_encode_3d(i, j, k));
      }
    }
  }
}

TEST(ZOrder, CubeCapacityEqualsSize) {
  const ZOrderLayout layout(Extents3D::cube(64));
  EXPECT_EQ(layout.required_capacity(), 64u * 64 * 64);
}

TEST(ZOrder, PadsNonPow2PerAxis) {
  const ZOrderLayout layout(Extents3D{5, 9, 17});
  // Padded to 8 x 16 x 32.
  EXPECT_EQ(layout.required_capacity(), 8u * 16 * 32);
}

TEST(ZOrder, AnisotropicIsCompactBijection) {
  // 32x8x2 padded extents: a full bijection onto [0, 512), i.e. the
  // anisotropic generator wastes nothing beyond pow2 padding.
  const Extents3D e{32, 8, 2};
  const ZOrderLayout layout(e);
  ASSERT_EQ(layout.required_capacity(), e.size());
  std::vector<bool> seen(e.size(), false);
  for (std::uint32_t k = 0; k < e.nz; ++k) {
    for (std::uint32_t j = 0; j < e.ny; ++j) {
      for (std::uint32_t i = 0; i < e.nx; ++i) {
        const auto idx = layout.index(i, j, k);
        ASSERT_LT(idx, seen.size());
        ASSERT_FALSE(seen[idx]);
        seen[idx] = true;
      }
    }
  }
}

TEST(ZOrder, DecodeInvertsIndex) {
  const Extents3D e{16, 32, 8};
  const ZOrderLayout layout(e);
  for (std::uint32_t k = 0; k < e.nz; ++k) {
    for (std::uint32_t j = 0; j < e.ny; ++j) {
      for (std::uint32_t i = 0; i < e.nx; ++i) {
        const auto c = layout.decode(layout.index(i, j, k));
        ASSERT_EQ(c, (core::Coord3D{i, j, k}));
      }
    }
  }
}

TEST(ZOrder, AdditionEqualsOrProperty) {
  // The per-axis deposited patterns are disjoint, so index() may combine
  // them with + (as the unified Indexer does) or with | interchangeably.
  const core::ZOrderTables tables(Extents3D{16, 16, 16});
  for (std::uint32_t i = 0; i < 16; ++i) {
    for (std::uint32_t j = 0; j < 16; ++j) {
      for (std::uint32_t k = 0; k < 16; ++k) {
        const auto xi = tables.index(i, 0, 0);
        const auto yj = tables.index(0, j, 0);
        const auto zk = tables.index(0, 0, k);
        ASSERT_EQ(xi + yj + zk, xi | yj | zk);
      }
    }
  }
}

TEST(ZOrder, BitPositionsAreAPermutation) {
  const core::ZOrderTables tables(Extents3D{16, 8, 4});  // 4+3+2 = 9 bits
  std::vector<bool> used(9, false);
  const unsigned bits[3] = {4, 3, 2};
  for (unsigned axis = 0; axis < 3; ++axis) {
    EXPECT_EQ(tables.axis_bits(axis), bits[axis]);
    for (unsigned b = 0; b < bits[axis]; ++b) {
      const unsigned pos = tables.bit_position(axis, b);
      ASSERT_LT(pos, 9u);
      EXPECT_FALSE(used[pos]);
      used[pos] = true;
    }
  }
}

TEST(ZOrder, CopiesShareTables) {
  const ZOrderLayout a(Extents3D::cube(32));
  const ZOrderLayout b = a;  // cheap copy into per-thread kernel state
  EXPECT_EQ(&a.tables(), &b.tables());
  EXPECT_EQ(a.index(3, 5, 7), b.index(3, 5, 7));
}

// ---------------------------------------------------------------------------
// Tiled layout specifics
// ---------------------------------------------------------------------------

TEST(Tiled, IntraTileIsRowMajorContiguous) {
  const TiledLayout layout(Extents3D::cube(32), 8);
  // Within the first tile, x-steps are unit strides.
  for (std::uint32_t i = 0; i + 1 < 8; ++i) {
    EXPECT_EQ(layout.index(i + 1, 0, 0), layout.index(i, 0, 0) + 1);
  }
  // Crossing a tile boundary in x jumps a whole tile volume.
  EXPECT_EQ(layout.index(8, 0, 0), 8u * 8 * 8);
}

TEST(Tiled, TileVolumeIsContiguousBlock) {
  const TiledLayout layout(Extents3D::cube(16), 4);
  // All 64 voxels of tile (0,0,0) occupy [0, 64).
  for (std::uint32_t k = 0; k < 4; ++k) {
    for (std::uint32_t j = 0; j < 4; ++j) {
      for (std::uint32_t i = 0; i < 4; ++i) {
        EXPECT_LT(layout.index(i, j, k), 64u);
      }
    }
  }
}

TEST(Tiled, RejectsNonPow2TileDims) {
  EXPECT_THROW(TiledLayout(Extents3D::cube(16), 3, 4, 4), std::invalid_argument);
  EXPECT_THROW(TiledLayout(Extents3D::cube(16), 4, 6, 4), std::invalid_argument);
  EXPECT_THROW(TiledLayout(Extents3D::cube(16), 4, 4, 12), std::invalid_argument);
}

TEST(Tiled, PadsPartialTiles) {
  const TiledLayout layout(Extents3D{9, 9, 9}, 8);
  // 2x2x2 tiles of 512 elements each.
  EXPECT_EQ(layout.required_capacity(), 8u * 512);
}

TEST(Tiled, AnisotropicTileDims) {
  const TiledLayout layout(Extents3D{32, 32, 32}, 16, 4, 2);
  EXPECT_EQ(layout.tile_x(), 16u);
  EXPECT_EQ(layout.tile_y(), 4u);
  EXPECT_EQ(layout.tile_z(), 2u);
  EXPECT_EQ(layout.required_capacity(), 32u * 32 * 32);
}

// ---------------------------------------------------------------------------
// Hilbert layout specifics
// ---------------------------------------------------------------------------

TEST(HilbertLayoutTest, CapacityIsEnclosingCube) {
  EXPECT_EQ(HilbertLayout(Extents3D::cube(16)).required_capacity(), 16u * 16 * 16);
  // Anisotropic extents pad to the largest axis's cube (documented cost of
  // the Hilbert baseline).
  EXPECT_EQ(HilbertLayout(Extents3D{16, 4, 4}).required_capacity(), 16u * 16 * 16);
}

// ---------------------------------------------------------------------------
// Locality comparison across layouts (the paper's core premise)
// ---------------------------------------------------------------------------

namespace {

/// Fraction of unit steps along `axis` that leave a `block`-element block
/// of the linear address space. This is the locality quantity the paper's
/// cache-miss counters are a proxy for: an access that stays inside the
/// same line/page block cannot miss if its predecessor hit.
template <class L>
double crossing_fraction(const L& layout, unsigned axis, std::uint32_t n,
                         std::size_t block) {
  std::size_t crossings = 0, count = 0;
  for (std::uint32_t k = 0; k < n - (axis == 2); ++k) {
    for (std::uint32_t j = 0; j < n - (axis == 1); ++j) {
      for (std::uint32_t i = 0; i < n - (axis == 0); ++i) {
        const auto a = layout.index(i, j, k) / block;
        const auto b = layout.index(i + (axis == 0), j + (axis == 1), k + (axis == 2)) / block;
        crossings += (a != b);
        ++count;
      }
    }
  }
  return static_cast<double>(crossings) / static_cast<double>(count);
}

constexpr std::size_t kLineElems = 16;   // 64-byte line of floats
constexpr std::size_t kPageElems = 1024;  // 4 KiB page of floats

}  // namespace

TEST(Locality, ZOrderBeatsArrayOrderOnYAndZSteps) {
  const std::uint32_t n = 32;
  const Extents3D e = Extents3D::cube(n);
  const ArrayOrderLayout a(e);
  const ZOrderLayout z(e);
  // Array order: every y- or z-step lands on a different cache line.
  // Z-order escapes a line on only half of those steps (at the price of
  // slightly more frequent escapes on x-steps).
  EXPECT_LT(crossing_fraction(z, 1, n, kLineElems), crossing_fraction(a, 1, n, kLineElems));
  EXPECT_LT(crossing_fraction(z, 2, n, kLineElems), crossing_fraction(a, 2, n, kLineElems));
  EXPECT_GT(crossing_fraction(z, 0, n, kLineElems), crossing_fraction(a, 0, n, kLineElems));
  // At page granularity Z-order wins on average across axes.
  double za = 0, aa = 0;
  for (unsigned axis = 0; axis < 3; ++axis) {
    za += crossing_fraction(z, axis, n, kPageElems);
    aa += crossing_fraction(a, axis, n, kPageElems);
  }
  EXPECT_LT(za, 0.5 * aa);
}

TEST(Locality, ZOrderIsAxisSymmetricOnCubes) {
  // The property behind Fig. 1: no "against the grain" direction exists.
  // Under array order the x:z line-crossing asymmetry is 1/16 : 1, a factor
  // of 16; under Z-order (line = 2x2x4-element brick) it is 1/4 : 1/2, a
  // factor of 2.
  const std::uint32_t n = 32;
  const ZOrderLayout z(Extents3D::cube(n));
  const double zx = crossing_fraction(z, 0, n, kLineElems);
  const double zy = crossing_fraction(z, 1, n, kLineElems);
  const double zz = crossing_fraction(z, 2, n, kLineElems);
  EXPECT_LT(zz / zx, 2.5);
  EXPECT_LE(zy, zz);
  const ArrayOrderLayout a(Extents3D::cube(n));
  const double ax = crossing_fraction(a, 0, n, kLineElems);
  const double az = crossing_fraction(a, 2, n, kLineElems);
  EXPECT_GT(az / ax, 10.0);
}
