// Tests for the dense row gathers (src/sfcvis/core/gather.hpp): every
// layout's gather_row must agree with element-wise at() for every axis,
// start position, and length — including the anisotropic Z-order table
// curve and the contiguous-run memcpy fast paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sfcvis/core/gather.hpp"
#include "sfcvis/core/grid.hpp"
#include "sfcvis/core/layout.hpp"

namespace core = sfcvis::core;

namespace {

/// Fills with a value that uniquely identifies the coordinate.
template <class Grid>
void fill_coded(Grid& g) {
  g.fill_from([](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    return static_cast<float>(i) + 1000.0f * static_cast<float>(j) +
           1000000.0f * static_cast<float>(k);
  });
}

template <class Grid>
void expect_all_rows_match(const Grid& g) {
  const auto& e = g.extents();
  std::vector<float> out;
  for (const core::Axis3 axis : {core::Axis3::kX, core::Axis3::kY, core::Axis3::kZ}) {
    const std::uint32_t extent =
        axis == core::Axis3::kX ? e.nx : axis == core::Axis3::kY ? e.ny : e.nz;
    for (std::uint32_t k = 0; k < e.nz; ++k) {
      for (std::uint32_t j = 0; j < e.ny; ++j) {
        for (std::uint32_t i = 0; i < e.nx; ++i) {
          const std::uint32_t along =
              axis == core::Axis3::kX ? i : axis == core::Axis3::kY ? j : k;
          // Every valid length from this start, including 1 and max.
          for (std::uint32_t n = 1; along + n <= extent; n += (n < 3 ? 1 : 3)) {
            out.assign(n, -1.0f);
            core::gather_row(g, axis, i, j, k, n, out.data());
            for (std::uint32_t l = 0; l < n; ++l) {
              const std::uint32_t gi = axis == core::Axis3::kX ? i + l : i;
              const std::uint32_t gj = axis == core::Axis3::kY ? j + l : j;
              const std::uint32_t gk = axis == core::Axis3::kZ ? k + l : k;
              ASSERT_EQ(out[l], g.at(gi, gj, gk))
                  << "axis=" << static_cast<int>(axis) << " start=(" << i << "," << j
                  << "," << k << ") n=" << n << " l=" << l;
            }
          }
        }
      }
    }
  }
}

/// Targeted coverage for larger shapes where the exhaustive sweep above is
/// too slow: checks gather_row only at starts on and adjacent to block
/// boundaries (multiples of `block` and their +/-1 neighbours), with
/// lengths chosen to stop short of, land on, and cross a boundary. This is
/// where the generic fallback and the run walkers switch between intra- and
/// inter-block address math.
template <class Grid>
void expect_rows_match_at_block_boundaries(const Grid& g, std::uint32_t block) {
  const auto& e = g.extents();
  const auto starts_for = [block](std::uint32_t extent) {
    std::vector<std::uint32_t> s{0, 1, extent - 1};
    for (std::uint32_t b = block; b < extent; b += block) {
      for (const std::uint32_t c : {b - 1, b, b + 1}) {
        if (c < extent) {
          s.push_back(c);
        }
      }
    }
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
    return s;
  };
  const auto si = starts_for(e.nx);
  const auto sj = starts_for(e.ny);
  const auto sk = starts_for(e.nz);
  std::vector<float> out;
  for (const core::Axis3 axis : {core::Axis3::kX, core::Axis3::kY, core::Axis3::kZ}) {
    const std::uint32_t extent =
        axis == core::Axis3::kX ? e.nx : axis == core::Axis3::kY ? e.ny : e.nz;
    for (const std::uint32_t k : sk) {
      for (const std::uint32_t j : sj) {
        for (const std::uint32_t i : si) {
          const std::uint32_t along =
              axis == core::Axis3::kX ? i : axis == core::Axis3::kY ? j : k;
          const std::uint32_t room = extent - along;
          for (std::uint32_t n : {1u, 2u, block - 1, block, block + 1, room}) {
            n = std::min(n, room);
            out.assign(n, -1.0f);
            core::gather_row(g, axis, i, j, k, n, out.data());
            for (std::uint32_t l = 0; l < n; ++l) {
              const std::uint32_t gi = axis == core::Axis3::kX ? i + l : i;
              const std::uint32_t gj = axis == core::Axis3::kY ? j + l : j;
              const std::uint32_t gk = axis == core::Axis3::kZ ? k + l : k;
              ASSERT_EQ(out[l], g.at(gi, gj, gk))
                  << "axis=" << static_cast<int>(axis) << " start=(" << i << "," << j
                  << "," << k << ") n=" << n << " l=" << l;
            }
          }
        }
      }
    }
  }
}

}  // namespace

TEST(GatherRow, ArrayOrderCube) {
  core::Grid3D<float, core::ArrayOrderLayout> g(core::Extents3D::cube(8));
  fill_coded(g);
  expect_all_rows_match(g);
}

TEST(GatherRow, ArrayOrderAnisotropic) {
  core::Grid3D<float, core::ArrayOrderLayout> g(core::Extents3D{11, 6, 9});
  fill_coded(g);
  expect_all_rows_match(g);
}

TEST(GatherRow, ZOrderCubePow2) {
  // Padded curve is cubic: exercises the incremental-Morton run walker.
  core::Grid3D<float, core::ZOrderLayout> g(core::Extents3D::cube(8));
  fill_coded(g);
  expect_all_rows_match(g);
}

TEST(GatherRow, ZOrderNonPow2Cube) {
  // 9^3 pads to 16^3 — still cubic, but rows cross padding holes.
  core::Grid3D<float, core::ZOrderLayout> g(core::Extents3D::cube(9));
  fill_coded(g);
  expect_all_rows_match(g);
}

TEST(GatherRow, ZOrderAnisotropic) {
  // Padded axes differ: exercises the per-axis deposit-table walker.
  core::Grid3D<float, core::ZOrderLayout> g(core::Extents3D{11, 6, 9});
  fill_coded(g);
  expect_all_rows_match(g);
}

TEST(GatherRow, TiledLayout) {
  core::Grid3D<float, core::TiledLayout> g(
      core::TiledLayout(core::Extents3D{11, 6, 9}, 4));
  fill_coded(g);
  expect_all_rows_match(g);
}

TEST(GatherRow, HilbertLayout) {
  core::Grid3D<float, core::HilbertLayout> g(core::Extents3D{11, 6, 9});
  fill_coded(g);
  expect_all_rows_match(g);
}

TEST(GatherRow, HilbertPow2CubeBlockBoundaries) {
  // 48^3 stores in a 64^3 enclosing Hilbert cube; pencils repeatedly cross
  // the curve's octant boundaries (every 8 voxels and at 16/32 splits).
  core::Grid3D<float, core::HilbertLayout> g(core::Extents3D::cube(48));
  fill_coded(g);
  expect_rows_match_at_block_boundaries(g, 8);
}

TEST(GatherRow, HilbertNonPow2Anisotropic) {
  // 37x21x13 pads to a 64^3 Hilbert cube: most of the curve is padding, so
  // valid-row runs are short and irregular.
  core::Grid3D<float, core::HilbertLayout> g(core::Extents3D{37, 21, 13});
  fill_coded(g);
  expect_rows_match_at_block_boundaries(g, 8);
}

TEST(GatherRow, TiledCubeBlockBoundaries) {
  // Extent is an exact multiple of the tile: every boundary start sits on a
  // tile seam, hitting the inter-tile stride path in the fallback.
  core::Grid3D<float, core::TiledLayout> g(
      core::TiledLayout(core::Extents3D::cube(48), 8));
  fill_coded(g);
  expect_rows_match_at_block_boundaries(g, 8);
}

TEST(GatherRow, TiledNonPow2AnisotropicBlockBoundaries) {
  // 37x21x13 with 4^3 tiles leaves partial tiles on every axis; rows cross
  // both full and clipped tiles.
  core::Grid3D<float, core::TiledLayout> g(
      core::TiledLayout(core::Extents3D{37, 21, 13}, 4));
  fill_coded(g);
  expect_rows_match_at_block_boundaries(g, 4);
}

TEST(GatherRow, ZOrderNonPow2AnisotropicBlockBoundaries) {
  // Same shape on the anisotropic Z-order tables: padded axis widths differ
  // (64/32/16), so boundary crossings differ per axis.
  core::Grid3D<float, core::ZOrderLayout> g(core::Extents3D{37, 21, 13});
  fill_coded(g);
  expect_rows_match_at_block_boundaries(g, 8);
}

TEST(GatherRow, SingleVoxelGrid) {
  core::Grid3D<float, core::ZOrderLayout> g(core::Extents3D{1, 1, 1});
  g.at(0, 0, 0) = 42.0f;
  float out = 0.0f;
  core::gather_row(g, core::Axis3::kX, 0, 0, 0, 1, &out);
  EXPECT_EQ(out, 42.0f);
}

TEST(GatherMortonRuns, CopiesContiguousRunsExactly) {
  // Along x from an even coordinate, Morton indices pair up (runs of 2);
  // the run walker must still reproduce the exact element sequence.
  std::vector<float> data(2048);
  for (std::size_t n = 0; n < data.size(); ++n) {
    data[n] = static_cast<float>(n);
  }
  for (std::uint32_t x0 : {0u, 1u, 2u, 3u}) {
    std::vector<float> out(7, -1.0f);
    const std::uint64_t m = core::morton_encode_3d(x0, 3, 5);
    core::GatherRunStats rs;
    core::detail::gather_morton_runs(
        data.data(), m, 7, out.data(),
        [](std::uint64_t z) { return core::morton_inc_x(z); }, &rs);
    EXPECT_EQ(rs.elements, 7u);
    EXPECT_GE(rs.max_run, 2u);  // even x0 pairs elements two by two
    for (std::uint32_t l = 0; l < 7; ++l) {
      EXPECT_EQ(out[l], static_cast<float>(core::morton_encode_3d(x0 + l, 3, 5)));
    }
  }
}
