// Tests for the dense row gathers (src/sfcvis/core/gather.hpp): every
// layout's gather_row must agree with element-wise at() for every axis,
// start position, and length — including the anisotropic Z-order table
// curve and the contiguous-run memcpy fast paths.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sfcvis/core/gather.hpp"
#include "sfcvis/core/grid.hpp"
#include "sfcvis/core/layout.hpp"

namespace core = sfcvis::core;

namespace {

/// Fills with a value that uniquely identifies the coordinate.
template <class Grid>
void fill_coded(Grid& g) {
  g.fill_from([](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    return static_cast<float>(i) + 1000.0f * static_cast<float>(j) +
           1000000.0f * static_cast<float>(k);
  });
}

template <class Grid>
void expect_all_rows_match(const Grid& g) {
  const auto& e = g.extents();
  std::vector<float> out;
  for (const core::Axis3 axis : {core::Axis3::kX, core::Axis3::kY, core::Axis3::kZ}) {
    const std::uint32_t extent =
        axis == core::Axis3::kX ? e.nx : axis == core::Axis3::kY ? e.ny : e.nz;
    for (std::uint32_t k = 0; k < e.nz; ++k) {
      for (std::uint32_t j = 0; j < e.ny; ++j) {
        for (std::uint32_t i = 0; i < e.nx; ++i) {
          const std::uint32_t along =
              axis == core::Axis3::kX ? i : axis == core::Axis3::kY ? j : k;
          // Every valid length from this start, including 1 and max.
          for (std::uint32_t n = 1; along + n <= extent; n += (n < 3 ? 1 : 3)) {
            out.assign(n, -1.0f);
            core::gather_row(g, axis, i, j, k, n, out.data());
            for (std::uint32_t l = 0; l < n; ++l) {
              const std::uint32_t gi = axis == core::Axis3::kX ? i + l : i;
              const std::uint32_t gj = axis == core::Axis3::kY ? j + l : j;
              const std::uint32_t gk = axis == core::Axis3::kZ ? k + l : k;
              ASSERT_EQ(out[l], g.at(gi, gj, gk))
                  << "axis=" << static_cast<int>(axis) << " start=(" << i << "," << j
                  << "," << k << ") n=" << n << " l=" << l;
            }
          }
        }
      }
    }
  }
}

}  // namespace

TEST(GatherRow, ArrayOrderCube) {
  core::Grid3D<float, core::ArrayOrderLayout> g(core::Extents3D::cube(8));
  fill_coded(g);
  expect_all_rows_match(g);
}

TEST(GatherRow, ArrayOrderAnisotropic) {
  core::Grid3D<float, core::ArrayOrderLayout> g(core::Extents3D{11, 6, 9});
  fill_coded(g);
  expect_all_rows_match(g);
}

TEST(GatherRow, ZOrderCubePow2) {
  // Padded curve is cubic: exercises the incremental-Morton run walker.
  core::Grid3D<float, core::ZOrderLayout> g(core::Extents3D::cube(8));
  fill_coded(g);
  expect_all_rows_match(g);
}

TEST(GatherRow, ZOrderNonPow2Cube) {
  // 9^3 pads to 16^3 — still cubic, but rows cross padding holes.
  core::Grid3D<float, core::ZOrderLayout> g(core::Extents3D::cube(9));
  fill_coded(g);
  expect_all_rows_match(g);
}

TEST(GatherRow, ZOrderAnisotropic) {
  // Padded axes differ: exercises the per-axis deposit-table walker.
  core::Grid3D<float, core::ZOrderLayout> g(core::Extents3D{11, 6, 9});
  fill_coded(g);
  expect_all_rows_match(g);
}

TEST(GatherRow, TiledLayout) {
  core::Grid3D<float, core::TiledLayout> g(
      core::TiledLayout(core::Extents3D{11, 6, 9}, 4));
  fill_coded(g);
  expect_all_rows_match(g);
}

TEST(GatherRow, HilbertLayout) {
  core::Grid3D<float, core::HilbertLayout> g(core::Extents3D{11, 6, 9});
  fill_coded(g);
  expect_all_rows_match(g);
}

TEST(GatherRow, SingleVoxelGrid) {
  core::Grid3D<float, core::ZOrderLayout> g(core::Extents3D{1, 1, 1});
  g.at(0, 0, 0) = 42.0f;
  float out = 0.0f;
  core::gather_row(g, core::Axis3::kX, 0, 0, 0, 1, &out);
  EXPECT_EQ(out, 42.0f);
}

TEST(GatherMortonRuns, CopiesContiguousRunsExactly) {
  // Along x from an even coordinate, Morton indices pair up (runs of 2);
  // the run walker must still reproduce the exact element sequence.
  std::vector<float> data(2048);
  for (std::size_t n = 0; n < data.size(); ++n) {
    data[n] = static_cast<float>(n);
  }
  for (std::uint32_t x0 : {0u, 1u, 2u, 3u}) {
    std::vector<float> out(7, -1.0f);
    const std::uint64_t m = core::morton_encode_3d(x0, 3, 5);
    core::detail::gather_morton_runs(data.data(), m, 7, out.data(),
                                     [](std::uint64_t z) { return core::morton_inc_x(z); });
    for (std::uint32_t l = 0; l < 7; ++l) {
      EXPECT_EQ(out[l], static_cast<float>(core::morton_encode_3d(x0 + l, 3, 5)));
    }
  }
}
