// Tests for Grid3D, layout conversion, and the plain/traced views.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sfcvis/core/grid.hpp"
#include "sfcvis/core/traced_view.hpp"

namespace core = sfcvis::core;

using core::ArrayOrderLayout;
using core::Extents3D;
using core::Grid3D;
using core::HilbertLayout;
using core::TiledLayout;
using core::ZOrderLayout;

namespace {

/// Unique value per coordinate for fill/readback checks.
float tag(std::uint32_t i, std::uint32_t j, std::uint32_t k) {
  return static_cast<float>(i) + 1000.0f * static_cast<float>(j) +
         1000000.0f * static_cast<float>(k);
}

}  // namespace

template <class L>
class GridTypedTest : public ::testing::Test {};

using AllLayouts = ::testing::Types<ArrayOrderLayout, ZOrderLayout, TiledLayout, HilbertLayout>;
TYPED_TEST_SUITE(GridTypedTest, AllLayouts);

TYPED_TEST(GridTypedTest, FillAndReadBack) {
  Grid3D<float, TypeParam> g(Extents3D{12, 9, 7});
  g.fill_from(tag);
  g.for_each_index([&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    ASSERT_EQ(g.at(i, j, k), tag(i, j, k));
  });
}

TYPED_TEST(GridTypedTest, ZeroInitialized) {
  const Grid3D<float, TypeParam> g(Extents3D::cube(8));
  g.for_each_index([&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    ASSERT_EQ(g.at(i, j, k), 0.0f);
  });
}

TYPED_TEST(GridTypedTest, ClampedAccessAtBorders) {
  Grid3D<float, TypeParam> g(Extents3D{4, 4, 4});
  g.fill_from(tag);
  EXPECT_EQ(g.at_clamped(-1, 0, 0), tag(0, 0, 0));
  EXPECT_EQ(g.at_clamped(0, -5, 0), tag(0, 0, 0));
  EXPECT_EQ(g.at_clamped(0, 0, -1), tag(0, 0, 0));
  EXPECT_EQ(g.at_clamped(4, 0, 0), tag(3, 0, 0));
  EXPECT_EQ(g.at_clamped(0, 9, 0), tag(0, 3, 0));
  EXPECT_EQ(g.at_clamped(1, 2, 100), tag(1, 2, 3));
  EXPECT_EQ(g.at_clamped(-3, 7, 9), tag(0, 3, 3));
}

TYPED_TEST(GridTypedTest, CapacityMatchesLayout) {
  const Extents3D e{10, 6, 3};
  const Grid3D<float, TypeParam> g(e);
  EXPECT_EQ(g.capacity(), g.layout().required_capacity());
  EXPECT_EQ(g.size(), e.size());
}

TYPED_TEST(GridTypedTest, StorageIsCacheLineAligned) {
  const Grid3D<float, TypeParam> g(Extents3D::cube(8));
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(g.data()) % core::kCacheLineBytes, 0u);
}

TEST(GridConvert, ArrayToZPreservesContents) {
  Grid3D<float, ArrayOrderLayout> a(Extents3D{16, 8, 4});
  a.fill_from(tag);
  const auto z = core::convert_layout<ZOrderLayout>(a);
  a.for_each_index([&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    ASSERT_EQ(z.at(i, j, k), tag(i, j, k));
  });
}

TEST(GridConvert, RoundTripThroughAllLayouts) {
  Grid3D<float, ArrayOrderLayout> a(Extents3D{9, 5, 6});
  a.fill_from(tag);
  const auto z = core::convert_layout<ZOrderLayout>(a);
  const auto t = core::convert_layout<TiledLayout>(z);
  const auto h = core::convert_layout<HilbertLayout>(t);
  const auto back = core::convert_layout<ArrayOrderLayout>(h);
  a.for_each_index([&](std::uint32_t i, std::uint32_t j, std::uint32_t k) {
    ASSERT_EQ(back.at(i, j, k), tag(i, j, k));
  });
}

TEST(GridArrayOrder, DataIsRowMajorContiguous) {
  Grid3D<float, ArrayOrderLayout> g(Extents3D{4, 3, 2});
  g.fill_from(tag);
  const float* p = g.data();
  std::size_t n = 0;
  for (std::uint32_t k = 0; k < 2; ++k) {
    for (std::uint32_t j = 0; j < 3; ++j) {
      for (std::uint32_t i = 0; i < 4; ++i) {
        EXPECT_EQ(p[n++], tag(i, j, k));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Views
// ---------------------------------------------------------------------------

namespace {

/// Test sink capturing the raw access stream.
struct RecordingSink {
  std::vector<std::uint64_t> addrs;
  std::vector<std::uint32_t> sizes;
  void access(std::uint64_t addr, std::uint32_t bytes) {
    addrs.push_back(addr);
    sizes.push_back(bytes);
  }
};

static_assert(core::AccessSink<RecordingSink>);
static_assert(core::ReadView3D<core::PlainView<float, ArrayOrderLayout>>);
static_assert(core::ReadView3D<core::TracedView<float, ZOrderLayout, RecordingSink>>);

}  // namespace

TEST(PlainView, ForwardsReads) {
  Grid3D<float, ZOrderLayout> g(Extents3D::cube(8));
  g.fill_from(tag);
  const core::PlainView<float, ZOrderLayout> v(g);
  EXPECT_EQ(v.at(1, 2, 3), tag(1, 2, 3));
  EXPECT_EQ(v.at_clamped(-1, 2, 3), tag(0, 2, 3));
  EXPECT_EQ(v.extents(), g.extents());
}

TEST(TracedView, RecordsEveryAccessRebasedToSyntheticOrigin) {
  // Reported addresses are kTracedBase + the element's byte offset in the
  // grid's storage — never the real heap address, so the modeled counters
  // cannot depend on where the allocator happened to place the volume.
  Grid3D<float, ZOrderLayout> g(Extents3D::cube(8));
  g.fill_from(tag);
  RecordingSink sink;
  const core::TracedView<float, ZOrderLayout, RecordingSink> v(g, sink);
  constexpr std::uint64_t base =
      core::TracedView<float, ZOrderLayout, RecordingSink>::kTracedBase;

  EXPECT_EQ(v.at(3, 4, 5), tag(3, 4, 5));
  EXPECT_EQ(v.at(0, 0, 0), tag(0, 0, 0));
  EXPECT_EQ(v.at_clamped(-2, 0, 0), tag(0, 0, 0));

  ASSERT_EQ(sink.addrs.size(), 3u);
  EXPECT_EQ(sink.addrs[0], base + g.layout().index(3, 4, 5) * sizeof(float));
  EXPECT_EQ(sink.addrs[1], base);  // element (0,0,0) sits at the grid base
  EXPECT_EQ(sink.addrs[2], sink.addrs[1]);  // clamped to the same voxel
  for (const auto s : sink.sizes) {
    EXPECT_EQ(s, sizeof(float));
  }
}

TEST(TracedView, AddressDeltaReflectsLayout) {
  // The traced stream must expose layout locality: a y-step in array order
  // jumps nx*sizeof(float) bytes; in Z-order (8-cube) it jumps 2 elements.
  Grid3D<float, ArrayOrderLayout> a(Extents3D::cube(8));
  Grid3D<float, ZOrderLayout> z(Extents3D::cube(8));
  RecordingSink sa, sz;
  const core::TracedView va(a, sa);
  const core::TracedView vz(z, sz);
  (void)va.at(0, 0, 0);
  (void)va.at(0, 1, 0);
  (void)vz.at(0, 0, 0);
  (void)vz.at(0, 1, 0);
  EXPECT_EQ(sa.addrs[1] - sa.addrs[0], 8 * sizeof(float));
  EXPECT_EQ(sz.addrs[1] - sz.addrs[0], 2 * sizeof(float));
}
